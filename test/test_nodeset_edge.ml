(* Node-set representation edges: the sparse/dense crossover at exactly
   promote_threshold ± 1, demotion at half with hysteresis (no
   thrashing), and image_within vs image agreement on adversarial
   candidate sets straddling both representations. *)

open Treekit

let n = 10_000

let threshold = Nodeset.promote_threshold n

let fill k =
  (* k distinct elements spread over the universe *)
  let s = Nodeset.create n in
  for i = 0 to k - 1 do
    Nodeset.add s (i * 7 mod n)
  done;
  Alcotest.(check int) "cardinal" k (Nodeset.cardinal s);
  s

let test_thresholds () =
  (* the documented formula: min 1024 (max 16 (2 * ceil(n/63))) *)
  Alcotest.(check int) "10k threshold" 318 threshold;
  Alcotest.(check int) "small universes floor at 16" 16
    (Nodeset.promote_threshold 40);
  Alcotest.(check int) "huge universes cap at 1024" 1024
    (Nodeset.promote_threshold 1_000_000)

let test_promotion_boundary () =
  let at k = Nodeset.rep_kind (fill k) in
  Alcotest.(check bool) "T-1 adds stay sparse" true (at (threshold - 1) = `Sparse);
  Alcotest.(check bool) "T adds stay sparse" true (at threshold = `Sparse);
  Alcotest.(check bool) "T+1 adds promote" true (at (threshold + 1) = `Dense)

let test_demotion_boundary () =
  let half = threshold / 2 in
  let shrink_to k =
    let s = fill (threshold + 1) in
    Alcotest.(check bool) "starts dense" true (Nodeset.rep_kind s = `Dense);
    let removed = ref 0 in
    (* remove in insertion order until the target cardinality *)
    let i = ref 0 in
    while Nodeset.cardinal s > k do
      Nodeset.remove s (!i * 7 mod n);
      incr i;
      incr removed
    done;
    s
  in
  Alcotest.(check bool) "half+1 stays dense" true
    (Nodeset.rep_kind (shrink_to (half + 1)) = `Dense);
  Alcotest.(check bool) "half demotes" true
    (Nodeset.rep_kind (shrink_to half) = `Sparse)

let test_hysteresis_no_thrash () =
  (* oscillating one past the promote point must not flip representations
     back and forth: once dense, the set stays dense down to half *)
  let s = fill (threshold + 1) in
  let extra = 9999 in
  Alcotest.(check bool) "dense after crossing" true (Nodeset.rep_kind s = `Dense);
  for _ = 1 to 100 do
    Nodeset.remove s extra;
    Nodeset.add s extra
  done;
  Alcotest.(check bool) "still dense after 100 oscillations" true
    (Nodeset.rep_kind s = `Dense);
  (* and symmetrically at the demote point: once sparse, adding one back
     does not re-promote inside the hysteresis band *)
  let half = threshold / 2 in
  let s2 = fill (threshold + 1) in
  let i = ref 0 in
  while Nodeset.cardinal s2 > half do
    Nodeset.remove s2 (!i * 7 mod n);
    incr i
  done;
  Alcotest.(check bool) "sparse at half" true (Nodeset.rep_kind s2 = `Sparse);
  for _ = 1 to 100 do
    Nodeset.add s2 0;
    Nodeset.remove s2 0
  done;
  Alcotest.(check bool) "still sparse after 100 oscillations" true
    (Nodeset.rep_kind s2 = `Sparse)

let test_boundary_semantics () =
  (* membership/enumeration agree with a model across the crossover *)
  List.iter
    (fun k ->
      let s = fill k in
      let expected =
        List.sort_uniq compare (List.init k (fun i -> i * 7 mod n))
      in
      Alcotest.(check (list int)) (Printf.sprintf "elements at %d" k) expected
        (Nodeset.elements s))
    [ threshold - 1; threshold; threshold + 1; (2 * threshold) + 1 ]

(* ------------------------------------------------------------------ *)
(* image_within vs image on adversarial candidate sets *)

let test_image_within_agreement () =
  let t =
    Generator.random_deep ~seed:17 ~n:4000 ~labels:[| "a"; "b"; "c"; "d" |]
      ~descend_bias:0.7 ()
  in
  let nn = Tree.size t in
  let sources =
    [
      ("singleton root", Nodeset.of_list nn [ 0 ]);
      ("singleton deep", Nodeset.of_list nn [ nn - 1 ]);
      ("label a", Tree.label_set t "a");
      ("sparse spread", Nodeset.of_list nn (List.init 20 (fun i -> i * 97 mod nn)));
      ("universe", Nodeset.universe nn);
    ]
  in
  let withins =
    [
      ("empty", Nodeset.create nn);
      ("singleton", Nodeset.of_list nn [ nn / 2 ]);
      ("tiny label probe", Tree.label_set t "d");
      ("dense complement", Nodeset.complement (Tree.label_set t "d"));
      ("first half", (let s = Nodeset.create nn in Nodeset.add_range s 0 (nn / 2); s));
      ("universe", Nodeset.universe nn);
    ]
  in
  List.iter
    (fun axis ->
      List.iter
        (fun (sn, s) ->
          List.iter
            (fun (wn, w) ->
              let direct = Axis.image_within t axis s w in
              let composed = Nodeset.inter (Axis.image t axis s) w in
              if not (Nodeset.equal direct composed) then
                Alcotest.failf "image_within <> inter(image) for %s, %s, %s"
                  (Axis.name axis) sn wn)
            withins)
        sources)
    Axis.all

let suite =
  [
    Alcotest.test_case "threshold formula" `Quick test_thresholds;
    Alcotest.test_case "promotion at exactly threshold + 1" `Quick
      test_promotion_boundary;
    Alcotest.test_case "demotion at exactly half" `Quick test_demotion_boundary;
    Alcotest.test_case "hysteresis does not thrash" `Quick
      test_hysteresis_no_thrash;
    Alcotest.test_case "semantics across the crossover" `Quick
      test_boundary_semantics;
    Alcotest.test_case "image_within = image ∩ within on adversarial sets"
      `Quick test_image_within_agreement;
  ]
