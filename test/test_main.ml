let () =
  Alcotest.run "treequery"
    [
      ("treekit", Test_treekit.suite);
      ("axis", Test_axis.suite);
      ("dynlabel", Test_dynlabel.suite);
      ("ordpath", Test_ordpath.suite);
      ("relkit", Test_relkit.suite);
      ("perfcore", Test_perfcore.suite);
      ("acyclic-relational", Test_acyclic.suite);
      ("hornsat", Test_hornsat.suite);
      ("mdatalog", Test_mdatalog.suite);
      ("axis-datalog", Test_axis_datalog.suite);
      ("treewidth", Test_treewidth.suite);
      ("cqtree", Test_cqtree.suite);
      ("actree", Test_actree.suite);
      ("xpath", Test_xpath.suite);
      ("streamq", Test_streamq.suite);
      ("gcsp", Test_gcsp.suite);
      ("folang", Test_folang.suite);
      ("automata", Test_automata.suite);
      ("positive", Test_positive.suite);
      ("engine", Test_engine.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
      ("subscribe", Test_subscribe.suite);
      ("optimizer", Test_optimizer.suite);
      ("cli", Test_cli.suite);
      ("telemetry", Test_telemetry.suite);
      ("opsplane", Test_opsplane.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("laws", Test_laws.suite);
      ("nodeset-edge", Test_nodeset_edge.suite);
      ("check", Test_check.suite);
      ("attest", Test_attest.suite);
    ]
