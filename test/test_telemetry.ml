(* The telemetry layer:
   - quantile sketch: exact vs a sorted-array reference under capacity,
     merge commutativity always / associativity under capacity,
     deterministic compaction above capacity;
   - EWMA: injectable-clock determinism, half-life semantics, and the
     frozen-clock fallback to the cumulative average;
   - flight recorder: ring wraparound keeps exactly the last N entries,
     first-trigger-wins, and the dump JSON round-trips through Obs.Json;
   - server integration: a tight residual threshold with injected
     over-budget work trips the violation counter and the recorder
     trigger, while a standard run stays dump-free; virtual-time metric
     ticks are deterministic under a fake clock. *)

open Helpers
module Q = Telemetry.Sketch.Quantile
module Ewma = Telemetry.Sketch.Ewma
module FR = Telemetry.Flight_recorder
module E = Treequery.Engine

(* ------------------------------------------------------------------ *)
(* quantile sketch *)

let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]

let reference sorted q =
  let n = Array.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
  sorted.(rank - 1)

let feed ?(capacity = 128) xs =
  let t = Q.create ~capacity () in
  List.iter (Q.add t) xs;
  t

let random_sample rng n =
  List.init n (fun _ -> float_of_int (Random.State.int rng 40) /. 4.0)

let test_sketch_exact_under_capacity () =
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 200 do
    let n = 1 + Random.State.int rng 60 in
    let xs = random_sample rng n in
    let sorted = Array.of_list (List.sort compare xs) in
    let t = feed xs in
    Alcotest.(check int) "count" n (Q.count t);
    Alcotest.(check (float 0.0)) "min" sorted.(0) (Q.min_value t);
    Alcotest.(check (float 0.0)) "max" sorted.(n - 1) (Q.max_value t);
    Alcotest.(check (float 0.0))
      "sum" (List.fold_left ( +. ) 0.0 xs) (Q.sum t);
    List.iter
      (fun q ->
        Alcotest.(check (float 0.0))
          (Printf.sprintf "q=%g" q) (reference sorted q) (Q.quantile t q))
      qs
  done

let test_sketch_merge_commutative () =
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 100 do
    let xs = random_sample rng (1 + Random.State.int rng 40) in
    let ys = random_sample rng (1 + Random.State.int rng 40) in
    (* small capacity too: commutativity must survive compaction *)
    List.iter
      (fun capacity ->
        let ab = Q.merge (feed ~capacity xs) (feed ~capacity ys) in
        let ba = Q.merge (feed ~capacity ys) (feed ~capacity xs) in
        Alcotest.(check (list (pair (float 0.0) int)))
          (Printf.sprintf "tuples agree at capacity %d" capacity)
          (Q.tuples ab) (Q.tuples ba))
      [ 4; 128 ]
  done

let test_sketch_merge_associative_under_capacity () =
  let rng = Random.State.make [| 13 |] in
  for _ = 1 to 100 do
    let xs = random_sample rng (1 + Random.State.int rng 20) in
    let ys = random_sample rng (1 + Random.State.int rng 20) in
    let zs = random_sample rng (1 + Random.State.int rng 20) in
    let s () = (feed xs, feed ys, feed zs) in
    let a, b, c = s () in
    let left = Q.merge (Q.merge a b) c in
    let a, b, c = s () in
    let right = Q.merge a (Q.merge b c) in
    Alcotest.(check (list (pair (float 0.0) int)))
      "association order irrelevant" (Q.tuples left) (Q.tuples right);
    let sorted = Array.of_list (List.sort compare (xs @ ys @ zs)) in
    List.iter
      (fun q ->
        Alcotest.(check (float 0.0))
          (Printf.sprintf "merged q=%g exact" q) (reference sorted q)
          (Q.quantile left q))
      qs
  done

let test_sketch_compaction () =
  let xs = List.init 1000 (fun i -> float_of_int (i mod 97)) in
  let t = feed ~capacity:16 xs in
  Alcotest.(check int) "count survives compaction" 1000 (Q.count t);
  Alcotest.(check bool) "tuples bounded" true (List.length (Q.tuples t) <= 16);
  Alcotest.(check (float 0.0)) "min exact" 0.0 (Q.min_value t);
  Alcotest.(check (float 0.0)) "max exact" 96.0 (Q.max_value t);
  (* deterministic: same input, same digest *)
  let t' = feed ~capacity:16 xs in
  Alcotest.(check (list (pair (float 0.0) int)))
    "deterministic" (Q.tuples t) (Q.tuples t');
  (* answers are observed values, monotone in q *)
  let prev = ref neg_infinity in
  List.iter
    (fun q ->
      let v = Q.quantile t q in
      Alcotest.(check bool) "observed value" true (List.mem v xs);
      Alcotest.(check bool) "monotone" true (v >= !prev);
      prev := v)
    qs

(* ------------------------------------------------------------------ *)
(* EWMA *)

let stepped_clock dt =
  let now = ref 0.0 in
  fun () ->
    now := !now +. dt;
    !now

let test_ewma_deterministic () =
  let run () =
    let e = Ewma.create ~half_life:10.0 ~clock:(stepped_clock 3.0) () in
    List.iter (Ewma.observe e) [ 1.0; 5.0; 2.0; 8.0; 3.0 ];
    (Ewma.mean e, Ewma.variance e, Ewma.count e)
  in
  let m1, v1, c1 = run () in
  let m2, v2, c2 = run () in
  Alcotest.(check (float 0.0)) "mean deterministic" m1 m2;
  Alcotest.(check (float 0.0)) "variance deterministic" v1 v2;
  Alcotest.(check int) "count" 5 c1;
  Alcotest.(check int) "count" 5 c2

let test_ewma_half_life () =
  (* one half-life between samples: the mean moves exactly halfway *)
  let e = Ewma.create ~half_life:10.0 ~clock:(stepped_clock 10.0) () in
  Ewma.observe e 0.0;
  Alcotest.(check (float 0.0)) "first sample is the mean" 0.0 (Ewma.mean e);
  Ewma.observe e 8.0;
  Alcotest.(check (float 1e-12)) "moved halfway" 4.0 (Ewma.mean e)

let test_ewma_frozen_clock () =
  (* a frozen clock must not drop samples: alpha falls back to 1/(n+1),
     i.e. the plain cumulative average *)
  let e = Ewma.create ~half_life:10.0 ~clock:(fun () -> 5.0) () in
  List.iter (Ewma.observe e) [ 2.0; 4.0; 6.0; 8.0 ];
  Alcotest.(check (float 1e-12)) "cumulative average" 5.0 (Ewma.mean e);
  Alcotest.(check int) "all counted" 4 (Ewma.count e)

(* ------------------------------------------------------------------ *)
(* flight recorder *)

let entry i =
  {
    FR.id = i;
    fingerprint = Printf.sprintf "fp-%d" (i mod 3);
    strategy = "xpath-bottom-up";
    attrs = [ ("|D|", Obs.Int 100); ("note", Obs.Str "weird \"name\"\n") ];
    counters = [ ("nodes_visited", 10 * i); ("semijoins", i) ];
    latency = float_of_int i /. 1000.0;
    predicted = 100.0;
    observed = float_of_int (11 * i);
    outcome = (if i mod 4 = 3 then FR.Violation else FR.Served);
  }

let test_ring_wraparound () =
  let r = FR.create ~capacity:4 () in
  Alcotest.(check int) "empty" 0 (FR.length r);
  Alcotest.(check (list int)) "no entries" []
    (List.map (fun (e : FR.entry) -> e.FR.id) (FR.entries r));
  for i = 0 to 9 do
    FR.push r (entry i)
  done;
  Alcotest.(check int) "length capped" 4 (FR.length r);
  Alcotest.(check int) "total uncapped" 10 (FR.total r);
  Alcotest.(check (list int)) "exactly the last 4, oldest first"
    [ 6; 7; 8; 9 ]
    (List.map (fun (e : FR.entry) -> e.FR.id) (FR.entries r))

let test_trigger_first_wins () =
  let r = FR.create ~capacity:4 () in
  Alcotest.(check (option string)) "untriggered" None (FR.triggered r);
  FR.trigger r "shed";
  FR.trigger r "residual-violation";
  FR.trigger r "shed";
  Alcotest.(check (option string)) "first reason kept" (Some "shed")
    (FR.triggered r);
  Alcotest.(check int) "all counted" 3 (FR.trigger_count r)

let test_dump_roundtrip () =
  let r = FR.create ~capacity:8 () in
  for i = 0 to 12 do
    FR.push r (entry i)
  done;
  FR.trigger r "residual-violation";
  FR.trigger r "shed";
  let s = Obs.Json.to_string (FR.to_json r) in
  let r' = FR.of_json (Obs.Json.of_string s) in
  Alcotest.(check string) "dump is a round-trip fixpoint" s
    (Obs.Json.to_string (FR.to_json r'));
  Alcotest.(check int) "capacity" (FR.capacity r) (FR.capacity r');
  Alcotest.(check int) "total" (FR.total r) (FR.total r');
  Alcotest.(check int) "length" (FR.length r) (FR.length r');
  Alcotest.(check (option string)) "trigger" (FR.triggered r) (FR.triggered r');
  Alcotest.(check int) "trigger count" (FR.trigger_count r)
    (FR.trigger_count r');
  List.iter2
    (fun (a : FR.entry) (b : FR.entry) ->
      Alcotest.(check int) "id" a.FR.id b.FR.id;
      Alcotest.(check string) "fingerprint" a.FR.fingerprint b.FR.fingerprint;
      Alcotest.(check string) "outcome"
        (FR.outcome_to_string a.FR.outcome)
        (FR.outcome_to_string b.FR.outcome))
    (FR.entries r) (FR.entries r')

(* ------------------------------------------------------------------ *)
(* server integration *)

let with_clean_obs f =
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let mini_shapes sources =
  Array.of_list
    (List.map
       (fun s -> { Serve.Workload.source = s; query = E.parse_xpath s })
       sources)

let closed_requests n nshapes =
  List.init n (fun i ->
      { Serve.Workload.id = i; shape = i mod nshapes; arrival = None })

let test_residual_injection_trips () =
  with_clean_obs @@ fun () ->
  let t = fig2_tree () in
  let shapes = mini_shapes [ "//a[b]"; "//b" ] in
  let store = Telemetry.Cost_store.create ~threshold:1.0 () in
  let recorder = FR.create ~capacity:64 () in
  let cfg =
    Serve.Server.config ~telemetry:store ~recorder ~inject_overbudget:true ()
  in
  let stats =
    Obs.with_enabled true (fun () ->
        Serve.Server.run cfg t shapes (closed_requests 20 2))
  in
  Alcotest.(check int) "all served" 20 stats.Serve.Server.served;
  (* injected work is 2x the admission bound: every request violates *)
  Alcotest.(check int) "every request violates" 20
    stats.Serve.Server.residual_violations;
  Alcotest.(check int) "store agrees" 20 (Telemetry.Cost_store.violations store);
  Alcotest.(check (option string)) "recorder triggered"
    (Some "residual-violation") (FR.triggered recorder);
  Alcotest.(check int) "one entry per request" 20 (FR.total recorder);
  List.iter
    (fun (e : FR.entry) ->
      Alcotest.(check string) "outcome" "residual-violation"
        (FR.outcome_to_string e.FR.outcome);
      Alcotest.(check bool) "observed exceeds predicted" true
        (e.FR.observed > e.FR.predicted);
      Alcotest.(check bool) "injected counter present" true
        (List.mem_assoc "serve_injected_work" e.FR.counters))
    (FR.entries recorder);
  (* the outlier table names both fingerprints *)
  let outliers = Telemetry.Cost_store.outliers store in
  Alcotest.(check int) "both shapes are outliers" 2 (List.length outliers)

let test_standard_run_dump_free () =
  with_clean_obs @@ fun () ->
  let t = fig2_tree () in
  let shapes = mini_shapes [ "//a[b]" ] in
  let store = Telemetry.Cost_store.create ~threshold:1.0 () in
  let recorder = FR.create () in
  let cfg = Serve.Server.config ~telemetry:store ~recorder () in
  let stats =
    Obs.with_enabled true (fun () ->
        Serve.Server.run cfg t shapes (closed_requests 20 1))
  in
  Alcotest.(check int) "all served" 20 stats.Serve.Server.served;
  Alcotest.(check int) "no violations" 0 stats.Serve.Server.residual_violations;
  Alcotest.(check (option string)) "no trigger" None (FR.triggered recorder);
  (* the store still learned the workload *)
  let summaries = Telemetry.Cost_store.summaries store in
  Alcotest.(check int) "one key" 1 (List.length summaries);
  let s = List.hd summaries in
  Alcotest.(check int) "served per key" 20 s.Telemetry.Cost_store.served;
  Alcotest.(check bool) "p99 >= p50" true
    (s.Telemetry.Cost_store.p99 >= s.Telemetry.Cost_store.p50)

let test_metric_ticks_deterministic () =
  (* fake clock advancing 0.1 virtual seconds per reading; with
     tick_every 0.25 the tick count is a pure function of the request
     count, so two runs agree exactly *)
  let run () =
    let ticks = ref [] in
    let now = ref 0.0 in
    let clock () =
      now := !now +. 0.1;
      !now
    in
    let t = fig2_tree () in
    let shapes = mini_shapes [ "//a" ] in
    let cfg =
      Serve.Server.config ~clock ~tick_every:0.25
        ~on_tick:(fun i vt -> ticks := (i, vt) :: !ticks)
        ()
    in
    let _ = Serve.Server.run cfg t shapes (closed_requests 12 1) in
    List.rev !ticks
  in
  let t1 = run () in
  let t2 = run () in
  Alcotest.(check bool) "ticks fired" true (List.length t1 > 0);
  Alcotest.(check (list (pair int (float 0.0)))) "deterministic" t1 t2;
  (* deadlines are the multiples of tick_every, in order *)
  List.iteri
    (fun j (i, vt) ->
      Alcotest.(check int) "indices consecutive" j i;
      Alcotest.(check (float 1e-9)) "deadline grid"
        (float_of_int (j + 1) *. 0.25)
        vt)
    t1

let suite =
  [
    Alcotest.test_case "sketch exact under capacity" `Quick
      test_sketch_exact_under_capacity;
    Alcotest.test_case "sketch merge commutative" `Quick
      test_sketch_merge_commutative;
    Alcotest.test_case "sketch merge associative under capacity" `Quick
      test_sketch_merge_associative_under_capacity;
    Alcotest.test_case "sketch compaction bounded + deterministic" `Quick
      test_sketch_compaction;
    Alcotest.test_case "ewma deterministic under fake clock" `Quick
      test_ewma_deterministic;
    Alcotest.test_case "ewma half-life semantics" `Quick test_ewma_half_life;
    Alcotest.test_case "ewma frozen clock falls back to average" `Quick
      test_ewma_frozen_clock;
    Alcotest.test_case "ring wraparound keeps last N" `Quick
      test_ring_wraparound;
    Alcotest.test_case "trigger first-wins" `Quick test_trigger_first_wins;
    Alcotest.test_case "flight dump JSON round-trip" `Quick
      test_dump_roundtrip;
    Alcotest.test_case "injected over-budget trips residual gate" `Quick
      test_residual_injection_trips;
    Alcotest.test_case "standard run is dump-free" `Quick
      test_standard_run_dump_free;
    Alcotest.test_case "metric ticks deterministic under fake clock" `Quick
      test_metric_ticks_deterministic;
  ]
