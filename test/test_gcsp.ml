open Treekit
open Helpers
module S = Actree.Structure
module G = Actree.Gcsp

let identity_order n = Array.init n Fun.id

(* ------------------------------------------------------------------ *)
(* Structures *)

let test_structure_basics () =
  let s = S.create ~size:5 in
  S.add_unary s "p" [ 0; 2; 2 ];
  S.add_binary s "r" [ (0, 1); (1, 2); (0, 1) ];
  Alcotest.(check bool) "unary mem" true (S.mem_unary s "p" 2);
  Alcotest.(check bool) "unary not mem" false (S.mem_unary s "p" 1);
  Alcotest.(check bool) "unknown unary" false (S.mem_unary s "q" 0);
  Alcotest.(check bool) "binary mem" true (S.mem_binary s "r" 1 2);
  Alcotest.(check int) "dedup" 2 (S.relation_size s "r");
  Alcotest.(check (list int)) "successors" [ 1 ] (S.successors s "r" 0);
  Alcotest.(check (list int)) "predecessors" [ 0 ] (S.predecessors s "r" 1);
  Alcotest.(check (list string)) "names" [ "r" ] (S.binary_names s)

let test_of_tree () =
  let t = fig2_tree () in
  let s = S.of_tree t [ Axis.Child; Axis.Descendant ] in
  Alcotest.(check int) "child pairs" 6 (S.relation_size s "child");
  Alcotest.(check int) "descendant pairs" 10 (S.relation_size s "descendant");
  Alcotest.(check bool) "labels materialised" true (S.mem_unary s "lab:b" 1);
  (* membership agrees with the axis implementation everywhere *)
  let ok = ref true in
  for u = 0 to 6 do
    for v = 0 to 6 do
      if S.mem_binary s "descendant" u v <> Axis.mem t Axis.Descendant u v then ok := false
    done
  done;
  Alcotest.(check bool) "axis agreement" true !ok

(* ------------------------------------------------------------------ *)
(* Example 6.1 — verbatim *)

let test_example_61 () =
  let s = S.example_61 () in
  let q = G.of_string {| q :- R(X, Y), S(X, Y). |} in
  (* the paper: Θ : x ↦ {1,3}, y ↦ {2,4} is an arc-consistent
     pre-valuation (0-based: {0,2} and {1,3}), yet q is not satisfiable *)
  (match G.arc_consistency s q with
  | Some pv ->
    check_nodeset "Theta(x)" (Nodeset.of_list 4 [ 0; 2 ])
      (Actree.Prevaluation.find pv "X");
    check_nodeset "Theta(y)" (Nodeset.of_list 4 [ 1; 3 ])
      (Actree.Prevaluation.find pv "Y")
  | None -> Alcotest.fail "expected an arc-consistent pre-valuation");
  Alcotest.(check bool) "q is not satisfiable" false (G.naive_boolean s q);
  (* and indeed the structure does NOT have the X-property w.r.t. the
     natural order — the premise of Theorem 6.5 fails, which is the
     example's point *)
  let order = identity_order 4 in
  Alcotest.(check bool) "S lacks the X-property" false
    (S.has_x_property s "S" ~order && S.has_x_property s "R" ~order)

(* ------------------------------------------------------------------ *)
(* X-property and closure *)

let test_x_closure_establishes_property () =
  let s = S.create ~size:6 in
  S.add_binary s "r" [ (1, 4); (3, 2); (0, 5); (4, 0) ];
  let order = identity_order 6 in
  Alcotest.(check bool) "initially without" false (S.has_x_property s "r" ~order);
  S.x_closure s "r" ~order;
  Alcotest.(check bool) "closure establishes it" true (S.has_x_property s "r" ~order)

let test_tree_axes_x_property () =
  (* Prop. 6.6 via the general checker: Child+ has the X-property w.r.t.
     <pre, Child does not (on a witness tree) *)
  let t = fig2_tree () in
  let s = S.of_tree t [ Axis.Child; Axis.Descendant ] in
  let pre_order = identity_order 7 in
  Alcotest.(check bool) "descendant wrt pre" true
    (S.has_x_property s "descendant" ~order:pre_order);
  let bflr = Tree.bflr_rank t in
  Alcotest.(check bool) "child wrt bflr" true (S.has_x_property s "child" ~order:bflr)

(* ------------------------------------------------------------------ *)
(* the general Lemma 6.4 / Theorem 6.5, property-tested on random
   structures whose relations are X-closed by construction *)

let random_x_structure seed =
  let rng = Random.State.make [| seed |] in
  let n = 3 + Random.State.int rng 6 in
  let s = S.create ~size:n in
  let order = identity_order n in
  List.iter
    (fun name ->
      let pairs =
        List.init
          (1 + Random.State.int rng 6)
          (fun _ -> (Random.State.int rng n, Random.State.int rng n))
      in
      S.add_binary s name pairs;
      S.x_closure s name ~order)
    [ "r"; "s" ];
  S.add_unary s "p" (List.init n (fun v -> v) |> List.filter (fun _ -> Random.State.bool rng));
  (s, order)

let random_query seed =
  let rng = Random.State.make [| seed * 31 + 7 |] in
  let var i = Printf.sprintf "V%d" i in
  let nvars = 2 + Random.State.int rng 3 in
  let atoms =
    List.init
      (1 + Random.State.int rng 4)
      (fun _ ->
        let x = var (Random.State.int rng nvars) and y = var (Random.State.int rng nvars) in
        G.B ((if Random.State.bool rng then "r" else "s"), x, y))
  in
  let unaries =
    if Random.State.bool rng then [ G.U ("p", var 0) ] else []
  in
  { G.head = []; atoms = unaries @ atoms }

let prop_theorem_65_general =
  qtest ~count:300 "Theorem 6.5 on random X-closed structures"
    QCheck2.Gen.(int_range 0 50_000)
    (fun seed ->
      let s, order = random_x_structure seed in
      let q = random_query seed in
      let sat, witness = G.boolean_via_x_property s q ~order in
      sat = G.naive_boolean s q
      &&
      match witness with
      | Some theta when sat -> G.holds s q (fun x -> List.assoc x theta)
      | Some _ -> false
      | None -> not sat)

let prop_ac_subsumes_solutions =
  qtest ~count:200 "AC pre-valuation contains every solution (general)"
    QCheck2.Gen.(int_range 0 50_000)
    (fun seed ->
      let s, _ = random_x_structure seed in
      let q = random_query seed in
      let full = { q with G.head = G.vars q } in
      match G.arc_consistency s q with
      | None -> G.naive_solutions s full = []
      | Some pv ->
        List.for_all
          (fun sol ->
            List.for_all2
              (fun x v -> Nodeset.mem (Actree.Prevaluation.find pv x) v)
              (G.vars q) (Array.to_list sol))
          (G.naive_solutions s full))

(* ------------------------------------------------------------------ *)
(* H-colouring *)

let test_h_coloring () =
  (* homomorphism from a triangle into a structure: exists iff the target
     has a triangle (for symmetric edges) *)
  let triangle = Treewidth.Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let q = G.homomorphism_query triangle ~edge_rel:"e" in
  let with_triangle = S.create ~size:4 in
  S.add_binary with_triangle "e"
    [ (0, 1); (1, 0); (1, 2); (2, 1); (0, 2); (2, 0); (2, 3); (3, 2) ];
  Alcotest.(check bool) "triangle found" true (G.naive_boolean with_triangle q);
  let bipartite = S.create ~size:4 in
  S.add_binary bipartite "e" [ (0, 1); (1, 0); (1, 2); (2, 1); (2, 3); (3, 2) ];
  Alcotest.(check bool) "no triangle in a path" false (G.naive_boolean bipartite q)

let test_gcsp_parser () =
  let q = G.of_string {| q(X) :- edge(X, Y), color:red(Y). |} in
  Alcotest.(check int) "atoms" 2 (List.length q.atoms);
  Alcotest.(check (list string)) "vars" [ "X"; "Y" ] (G.vars q);
  Alcotest.(check bool) "unsafe rejected" true
    (match G.of_string {| q(Z) :- edge(X, Y). |} with
    | exception Failure _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "structure basics" `Quick test_structure_basics;
    Alcotest.test_case "of_tree materialisation" `Quick test_of_tree;
    Alcotest.test_case "Example 6.1 verbatim" `Quick test_example_61;
    Alcotest.test_case "x_closure establishes the property" `Quick
      test_x_closure_establishes_property;
    Alcotest.test_case "tree axes via the general checker" `Quick
      test_tree_axes_x_property;
    prop_theorem_65_general;
    prop_ac_subsumes_solutions;
    Alcotest.test_case "H-colouring" `Quick test_h_coloring;
    Alcotest.test_case "gcsp parser" `Quick test_gcsp_parser;
  ]
