open Treekit
open Helpers
module PP = Streamq.Path_pattern
module PM = Streamq.Path_matcher
module TM = Streamq.Twig_matcher
module FE = Streamq.Filter_engine

let test_pattern_parse () =
  let p = PP.of_string "//a/b//*" in
  Alcotest.(check int) "length" 3 (PP.length p);
  Alcotest.(check string) "roundtrip" "//a/b//*" (PP.to_string p);
  Alcotest.(check bool) "bare name anchors anywhere" true
    (PP.of_string "a" = PP.of_string "//a");
  Alcotest.(check bool) "bad pattern" true
    (match PP.of_string "//" with
    | exception Treekit.Parse_error.Error { pos = 2; _ } -> true
    | _ -> false)

let test_pattern_xpath_bridge () =
  let p = PP.of_string "//a/b" in
  let x = PP.to_xpath p in
  Alcotest.(check bool) "recognised back" true (PP.of_xpath x = Some p);
  (* the //-desugared parser shape is recognised too *)
  let x2 = Xpath.Parser.parse "//a" in
  Alcotest.(check bool) "desugared //" true
    (PP.of_xpath x2 = Some (PP.of_string "//a"))

let test_matcher_fig2 () =
  let t = fig2_tree () in
  let sel s = PM.select t (PP.of_string s) in
  check_nodeset "//b" (Nodeset.of_list 7 [ 1; 5 ]) (sel "//b");
  check_nodeset "/a/b" (Nodeset.of_list 7 [ 5 ]) (sel "/a/b");
  check_nodeset "//b/a" (Nodeset.of_list 7 [ 2 ]) (sel "//b/a");
  check_nodeset "//zzz" (Nodeset.create 7) (sel "//zzz");
  Alcotest.(check bool) "matches" true (PM.matches t (PP.of_string "//c"));
  Alcotest.(check bool) "no match" false (PM.matches t (PP.of_string "//c/a"))

let stream_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let* tseed = int_range 0 100_000 in
    let* len = int_range 1 5 in
    let* n = int_range 1 60 in
    return
      ( PP.random ~seed ~length:len ~labels:Generator.labels_abc (),
        random_tree ~seed:tseed ~n () ))

let prop_streaming_equals_in_memory =
  qtest ~count:300 "streaming select = in-memory XPath" stream_gen (fun (p, t) ->
      Nodeset.equal (PM.select t p) (Xpath.Eval.query t (PP.to_xpath p)))

let prop_memory_is_depth_bounded =
  qtest ~count:100 "peak memory = depth of tree, not size" stream_gen
    (fun (p, t) ->
      let stats = PM.run t p ~on_match:(fun _ -> ()) in
      stats.peak_depth = Tree.height t + 1 && stats.events = 2 * Tree.size t)

let test_memory_independent_of_width () =
  (* same depth, 100x more nodes: peak stays constant *)
  let p = PP.of_string "//a/b" in
  let narrow = Generator.full ~fanout:2 ~depth:3 () in
  let wide = Generator.full ~fanout:14 ~depth:3 () in
  let s1 = PM.run narrow p ~on_match:(fun _ -> ()) in
  let s2 = PM.run wide p ~on_match:(fun _ -> ()) in
  Alcotest.(check int) "same peak" s1.peak_depth s2.peak_depth;
  Alcotest.(check bool) "many more events" true (s2.events > 10 * s1.events)

let test_feed_incremental () =
  let t = fig2_tree () in
  let push, finish = PM.feed (PP.of_string "//b") in
  Event.iter t push;
  let stats = finish () in
  Alcotest.(check int) "matches" 2 stats.matches

(* twig matcher *)
let twig_gen =
  QCheck2.Gen.(
    let* qseed = int_range 0 50_000 in
    let* tseed = int_range 0 50_000 in
    let* nvars = int_range 1 5 in
    let* n = int_range 1 40 in
    let q =
      Cqtree.Generator.acyclic ~seed:qseed ~nvars
        ~axes:[ Axis.Child; Axis.Descendant ] ~labels:Generator.labels_abc ()
    in
    return (q, random_tree ~seed:tseed ~n ()))

let prop_twig_matcher =
  qtest ~count:250 "streaming twig = in-memory twig join" twig_gen (fun (q, t) ->
      match Actree.Twigjoin.of_query q with
      | None -> QCheck2.assume_fail ()
      | Some twig ->
        TM.matches t twig = (Actree.Twigjoin.solutions t twig <> []))

let test_twig_match_count () =
  let t = fig2_tree () in
  let twig =
    { Actree.Twigjoin.label = Some "a";
      children = [ (Actree.Twigjoin.Child_edge, { label = Some "b"; children = [] }) ] }
  in
  let stats = TM.run t twig in
  (* a-nodes with a b-child: 0 and 4 *)
  Alcotest.(check int) "match count" 2 stats.match_count;
  Alcotest.(check bool) "matched" true stats.matched

(* streaming XPath with qualifiers *)
let test_xpath_filter_examples () =
  let t = fig2_tree () in
  let check_q s want =
    match Streamq.Xpath_filter.matches t (Xpath.Parser.parse s) with
    | Some got -> Alcotest.(check bool) s want got
    | None -> Alcotest.fail ("unsupported: " ^ s)
  in
  check_q "//b[child::a]" true;
  check_q "//b[child::a][child::c]" true;
  check_q "//b[child::a and child::d]" false;
  check_q "//a[descendant::d]/b" true;
  (* leading child step: anchored at the root *)
  check_q "/b" true;
  check_q "/c" false;
  check_q "/a/b" true;
  check_q "//b/a/c" false;
  Alcotest.(check bool) "negation unsupported" true
    (Streamq.Xpath_filter.matches t (Xpath.Parser.parse "//a[not(b)]") = None);
  Alcotest.(check bool) "reverse axis unsupported" true
    (Streamq.Xpath_filter.matches t (Xpath.Parser.parse "//a/parent::*") = None)

let prop_xpath_filter =
  qtest ~count:300 "streaming qualified filter = in-memory evaluation"
    QCheck2.Gen.(
      let* seed = int_range 0 100_000 in
      let* tseed = int_range 0 100_000 in
      let* depth = int_range 0 3 in
      let* n = int_range 1 40 in
      return
        ( Xpath.Generator.random ~seed ~depth ~labels:Generator.labels_abc
            ~axes:[ Axis.Child; Axis.Descendant ] ~allow_negation:false
            ~allow_union:false (),
          random_tree ~seed:tseed ~n () ))
    (fun (p, t) ->
      match Streamq.Xpath_filter.matches t p with
      | None -> QCheck2.assume_fail ()
      | Some got -> got = not (Nodeset.is_empty (Xpath.Eval.query t p)))

(* reusable matcher state: a matcher reset between documents must behave
   exactly like a freshly constructed one (the subscription index keeps
   pooled matchers alive across an unbounded document stream) *)
let reuse_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 50_000 in
    let* len = int_range 1 4 in
    let* ts1 = int_range 0 50_000 in
    let* ts2 = int_range 0 50_000 in
    let* n1 = int_range 1 40 in
    let* n2 = int_range 1 40 in
    return
      ( PP.random ~seed ~length:len ~labels:Generator.labels_abc (),
        random_tree ~seed:ts1 ~n:n1 (),
        random_tree ~seed:ts2 ~n:n2 () ))

let prop_path_matcher_reset =
  qtest ~count:200 "path matcher: reset = fresh construction" reuse_gen
    (fun (p, t1, t2) ->
      let fired = ref [] in
      let m = PM.create p ~on_match:(fun i -> fired := i :: !fired) in
      Event.iter t1 (PM.push m);
      PM.reset m;
      fired := [];
      Event.iter t2 (PM.push m);
      let reused = (List.rev !fired, PM.stats m) in
      let fired' = ref [] in
      let m' = PM.create p ~on_match:(fun i -> fired' := i :: !fired') in
      Event.iter t2 (PM.push m');
      reused = (List.rev !fired', PM.stats m'))

let prop_twig_matcher_reset =
  qtest ~count:200 "twig matcher: reset = fresh construction"
    QCheck2.Gen.(
      let* qseed = int_range 0 50_000 in
      let* nvars = int_range 1 4 in
      let* ts1 = int_range 0 50_000 in
      let* ts2 = int_range 0 50_000 in
      let* n1 = int_range 1 40 in
      let* n2 = int_range 1 40 in
      let q =
        Cqtree.Generator.acyclic ~seed:qseed ~nvars
          ~axes:[ Axis.Child; Axis.Descendant ] ~labels:Generator.labels_abc ()
      in
      return (q, random_tree ~seed:ts1 ~n:n1 (), random_tree ~seed:ts2 ~n:n2 ()))
    (fun (q, t1, t2) ->
      match Actree.Twigjoin.of_query q with
      | None -> QCheck2.assume_fail ()
      | Some twig ->
        let m = TM.create twig in
        Event.iter t1 (TM.push m);
        TM.reset m;
        Event.iter t2 (TM.push m);
        let m' = TM.create twig in
        Event.iter t2 (TM.push m');
        TM.stats m = TM.stats m')

(* filter engine *)
let test_filter_engine () =
  let eng = FE.create () in
  let s1 = FE.subscribe eng (PP.of_string "//b") in
  let s2 = FE.subscribe eng (PP.of_string "/a/b") in
  let s3 = FE.subscribe eng (PP.of_string "//zzz") in
  let s4 = FE.subscribe eng (PP.of_string "//b/a") in
  Alcotest.(check int) "ids" 2 s3;
  Alcotest.(check int) "count" 4 (FE.subscription_count eng);
  let matched = FE.match_document eng (fig2_tree ()) in
  Alcotest.(check (list int)) "matched subs" [ s1; s2; s4 ] matched

let test_filter_engine_xpath_subs () =
  let eng = FE.create () in
  let s1 = FE.subscribe eng (PP.of_string "//b") in
  let s2 = FE.subscribe_xpath eng (Xpath.Parser.parse "//b[child::a]") in
  let s3 = FE.subscribe_xpath eng (Xpath.Parser.parse "//b[child::d]") in
  let s4 = FE.subscribe_xpath eng (Xpath.Parser.parse "//a[not(b)]") in
  Alcotest.(check bool) "qualified accepted" true (s2 = Some 1 && s3 = Some 2);
  Alcotest.(check bool) "negation rejected" true (s4 = None);
  let matched = FE.match_document eng (fig2_tree ()) in
  Alcotest.(check (list int)) "mixed subscriptions" [ s1; Option.get s2 ] matched

let prop_filter_engine_consistent =
  qtest ~count:100 "filter engine = individual matchers"
    QCheck2.Gen.(
      let* tseed = int_range 0 50_000 in
      let* n = int_range 1 40 in
      let* k = int_range 1 8 in
      return (random_tree ~seed:tseed ~n (), k, tseed))
    (fun (t, k, seed) ->
      let eng = FE.create () in
      let pats =
        List.init k (fun i ->
            PP.random ~seed:(seed + i) ~length:(1 + (i mod 3))
              ~labels:Generator.labels_abc ())
      in
      List.iter (fun p -> ignore (FE.subscribe eng p)) pats;
      let got = FE.match_document eng t in
      let want =
        List.concat (List.mapi (fun i p -> if PM.matches t p then [ i ] else []) pats)
      in
      got = want)

let suite =
  [
    Alcotest.test_case "pattern parse" `Quick test_pattern_parse;
    Alcotest.test_case "pattern/xpath bridge" `Quick test_pattern_xpath_bridge;
    Alcotest.test_case "matcher on fig2" `Quick test_matcher_fig2;
    prop_streaming_equals_in_memory;
    prop_memory_is_depth_bounded;
    Alcotest.test_case "memory independent of width" `Quick test_memory_independent_of_width;
    Alcotest.test_case "incremental feed" `Quick test_feed_incremental;
    prop_twig_matcher;
    Alcotest.test_case "twig match count" `Quick test_twig_match_count;
    prop_path_matcher_reset;
    prop_twig_matcher_reset;
    Alcotest.test_case "qualified streaming filter examples" `Quick
      test_xpath_filter_examples;
    prop_xpath_filter;
    Alcotest.test_case "filter engine" `Quick test_filter_engine;
    Alcotest.test_case "filter engine: qualified XPath subscriptions" `Quick
      test_filter_engine_xpath_subs;
    prop_filter_engine_consistent;
  ]
