(* The observability library itself, and the invariant that tracing a run
   never changes its result. *)
open Helpers
module E = Treequery.Engine

(* every test leaves Obs disabled and empty so suites stay independent *)
let with_clean_obs f =
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let test_span_nesting () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  Obs.Span.with_ "outer" (fun () ->
      Obs.Span.with_ "inner-1" (fun () -> ());
      Obs.Span.with_ "inner-2" (fun () ->
          Obs.Span.with_ "leaf" (fun () -> ())));
  Obs.Span.with_ "second-root" (fun () -> ());
  let r = Obs.Report.capture () in
  let names =
    List.map (fun (s : Obs.Report.span) -> s.name) r.Obs.Report.spans
  in
  Alcotest.(check (list string)) "roots in order" [ "outer"; "second-root" ] names;
  let outer = List.hd r.Obs.Report.spans in
  Alcotest.(check (list string))
    "children in order" [ "inner-1"; "inner-2" ]
    (List.map (fun (s : Obs.Report.span) -> s.name) outer.children);
  let inner2 = List.nth outer.children 1 in
  Alcotest.(check (list string))
    "grandchild" [ "leaf" ]
    (List.map (fun (s : Obs.Report.span) -> s.name) inner2.children);
  Alcotest.(check bool) "durations are non-negative" true
    (List.for_all (fun (s : Obs.Report.span) -> s.duration >= 0.0) r.Obs.Report.spans)

let test_span_survives_exception () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  (try Obs.Span.with_ "will-raise" (fun () -> failwith "boom")
   with Failure _ -> ());
  let r = Obs.Report.capture () in
  Alcotest.(check (list string))
    "span recorded despite exception" [ "will-raise" ]
    (List.map (fun (s : Obs.Report.span) -> s.name) r.Obs.Report.spans)

let test_counter_reset_between_runs () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_only_counter" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "accumulated" 42 (Obs.Counter.value c);
  Alcotest.(check bool) "snapshot sees it" true
    (List.mem_assoc "test_only_counter" (Obs.Counter.snapshot ()));
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c);
  Alcotest.(check (list (pair string int))) "snapshot empty after reset" []
    (Obs.Counter.snapshot ());
  Obs.Counter.incr c;
  Alcotest.(check int) "second run counts afresh" 1 (Obs.Counter.value c);
  Alcotest.(check bool) "make is deduplicated by name" true
    (Obs.Counter.make "test_only_counter" == c)

let test_disabled_mode_empty () =
  with_clean_obs @@ fun () ->
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  let c = Obs.Counter.make "test_disabled_counter" in
  Obs.Counter.incr c;
  Obs.Counter.add c 7;
  Obs.Counter.record_max c 99;
  Obs.Span.with_ "invisible" (fun () -> ());
  let r = Obs.Report.capture () in
  Alcotest.(check bool) "report is empty" true (Obs.Report.is_empty r);
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c)

let test_json_roundtrip () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_json_counter" in
  Obs.Counter.add c 123;
  Obs.Span.with_ "parent \"quoted\"" (fun () ->
      Obs.Span.with_ "child\n2" (fun () -> ()));
  let r = Obs.Report.capture () in
  let r' = Obs.Report.of_json (Obs.Report.to_json r) in
  Alcotest.(check (list (pair string int)))
    "counters round-trip" r.Obs.Report.counters r'.Obs.Report.counters;
  let rec names (s : Obs.Report.span) =
    s.name :: List.concat_map names s.children
  in
  Alcotest.(check (list string))
    "span names round-trip (incl. escapes)"
    (List.concat_map names r.Obs.Report.spans)
    (List.concat_map names r'.Obs.Report.spans);
  (* a second parse of a re-serialisation is identical *)
  Alcotest.(check string) "serialisation is a fixpoint"
    (Obs.Report.to_json r')
    (Obs.Report.to_json (Obs.Report.of_json (Obs.Report.to_json r')))

let test_json_parser_rejects_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (match Obs.Json.of_string "{\"a\": }" with
    | exception Obs.Json.Parse_failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "trailing junk rejected" true
    (match Obs.Json.of_string "[1] x" with
    | exception Obs.Json.Parse_failure _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* tracing must not change results: acceptance criterion of the obs PR *)

let queries =
  [
    ("xpath", E.parse_xpath "//a[b and not(descendant::c)]");
    ("cq-yannakakis", E.parse_cq {| q(X) :- lab(X, "a"), child(X, Y), lab(Y, "b"). |});
    ( "cq-arc-consistency",
      E.parse_cq {| q :- descendant(X, Y), descendant(Y, Z), descendant(X, Z). |} );
    ( "cq-rewrite",
      E.parse_cq {| q(Z) :- lab(X, "a"), descendant(X, Z), lab(Y, "b"), descendant(Y, Z). |} );
    ( "datalog",
      E.parse_datalog
        {| mark(X) :- lab(X, "b"), notroot(X).
           notroot(X) :- firstchild(Y, X).
           notroot(X) :- nextsibling(Y, X).
           ?- mark. |} );
    ( "axis-datalog",
      E.parse_axis_datalog
        {| even(X) :- root(X).
           odd(Y) :- even(X), child(X, Y).
           even(Y) :- odd(X), child(X, Y).
           ?- odd. |} );
  ]

let test_tracing_changes_no_results () =
  with_clean_obs @@ fun () ->
  let trees =
    [ fig2_tree (); random_tree ~seed:7 ~n:60 (); random_tree ~seed:8 ~n:200 () ]
  in
  List.iter
    (fun tree ->
      List.iter
        (fun (name, q) ->
          let off = Obs.with_enabled false (fun () -> E.eval q tree) in
          Obs.reset ();
          let on = Obs.with_enabled true (fun () -> E.eval q tree) in
          check_nodeset (name ^ ": node set unchanged by tracing") off on;
          Alcotest.(check bool)
            (name ^ ": traced run recorded something") true
            (not (Obs.Report.is_empty (Obs.Report.capture ()))))
        queries)
    trees

let test_engine_semijoin_bound () =
  with_clean_obs @@ fun () ->
  (* Prop. 4.2: the full reducer is a 2·|edges| semijoin program, and the
     join tree has fewer edges than the query has atoms *)
  let q = {| q(X) :- lab(X, "a"), child(X, Y), lab(Y, "b"), descendant(Y, Z), lab(Z, "c"). |} in
  let parsed = E.parse_cq q in
  Alcotest.(check string) "planned as yannakakis" "yannakakis"
    (E.strategy_name (E.plan parsed));
  let atoms =
    match parsed with E.Cq_query cq -> Cqtree.Query.atom_count cq | _ -> assert false
  in
  let tree = random_tree ~seed:11 ~n:300 () in
  Obs.reset ();
  ignore (Obs.with_enabled true (fun () -> E.solutions parsed tree));
  let passes =
    match List.assoc_opt "semijoin_passes" (Obs.Counter.snapshot ()) with
    | Some v -> v
    | None -> Alcotest.fail "no semijoin_passes counter recorded"
  in
  Alcotest.(check bool)
    (Printf.sprintf "0 < %d semijoin passes <= 2*%d atoms" passes atoms)
    true
    (passes > 0 && passes <= 2 * atoms)

let test_hornsat_linear_witness () =
  with_clean_obs @@ fun () ->
  (* Minoux / Fig. 3: unit propagations are bounded by the formula size *)
  let f = Hornsat.create ~nvars:200 in
  for i = 0 to 198 do
    ignore (Hornsat.add_rule f ~head:(i + 1) ~body:[ i ])
  done;
  ignore (Hornsat.add_rule f ~head:0 ~body:[]);
  Obs.reset ();
  let truth = Obs.with_enabled true (fun () -> Hornsat.solve f) in
  Alcotest.(check bool) "chain fully derived" true (Array.for_all Fun.id truth);
  let props =
    match List.assoc_opt "hornsat_unit_props" (Obs.Counter.snapshot ()) with
    | Some v -> v
    | None -> Alcotest.fail "no hornsat_unit_props counter recorded"
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d propagations <= formula size %d" props (Hornsat.size_of_formula f))
    true
    (props > 0 && props <= Hornsat.size_of_formula f)

let test_histogram_quantiles () =
  let h = Obs.Histogram.make "test_hist_quantiles" in
  Obs.Histogram.clear h;
  (* 100 samples 1..100 ms: log-bucketed quantiles are approximate, but
     must land within one bucket (ratio sqrt 2) of the true value *)
  for i = 1 to 100 do
    Obs.Histogram.observe h (float_of_int i /. 1000.0)
  done;
  Alcotest.(check int) "count" 100 (Obs.Histogram.count h);
  let within_bucket name expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %.4f within a bucket of %.4f" name actual expected)
      true
      (actual >= expected /. sqrt 2.0 && actual <= expected *. sqrt 2.0)
  in
  let s = Obs.Histogram.summary h in
  within_bucket "p50" 0.050 s.Obs.p50;
  within_bucket "p99" 0.099 s.Obs.p99;
  Alcotest.(check (float 1e-9)) "max is exact" 0.100 s.Obs.max;
  Alcotest.(check bool) "mean near 50.5 ms" true
    (Float.abs (s.Obs.mean -. 0.0505) < 0.001);
  (* quantiles are monotone *)
  Alcotest.(check bool) "p50 <= p90 <= p95 <= p99 <= max" true
    (s.Obs.p50 <= s.Obs.p90 && s.Obs.p90 <= s.Obs.p95 && s.Obs.p95 <= s.Obs.p99
   && s.Obs.p99 <= s.Obs.max *. sqrt 2.0);
  (* clear empties this histogram only *)
  Obs.Histogram.clear h;
  Alcotest.(check int) "cleared" 0 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "empty percentile is 0" 0.0
    (Obs.Histogram.percentile h 0.5)

let test_histogram_ungated_and_registered () =
  with_clean_obs @@ fun () ->
  (* histograms are deliberate driver instruments: they record even with
     tracing disabled, and make is deduplicated by name *)
  Alcotest.(check bool) "tracing is off" false (Obs.enabled ());
  let h = Obs.Histogram.make "test_hist_ungated" in
  Obs.Histogram.clear h;
  Obs.Histogram.observe h 0.002;
  Obs.Histogram.observe h (-1.0) (* clamped to 0, still counted *);
  Alcotest.(check int) "recorded while disabled" 2 (Obs.Histogram.count h);
  Alcotest.(check bool) "make deduplicates" true
    (Obs.Histogram.make "test_hist_ungated" == h);
  Alcotest.(check bool) "snapshot lists it" true
    (List.mem_assoc "test_hist_ungated" (Obs.Histogram.snapshot ()));
  Obs.Histogram.clear h;
  Alcotest.(check bool) "empty histograms drop out of the snapshot" false
    (List.mem_assoc "test_hist_ungated" (Obs.Histogram.snapshot ()))

let test_explain_appends_observed () =
  with_clean_obs @@ fun () ->
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let q = E.parse_xpath "//a[b]" in
  let plain = E.explain q in
  Alcotest.(check bool) "no observed section without a run" false
    (contains plain "observed:");
  Obs.reset ();
  ignore (Obs.with_enabled true (fun () -> E.eval q (fig2_tree ())));
  let traced = E.explain q in
  Alcotest.(check bool) "observed section after a traced run" true
    (contains traced "observed:");
  Alcotest.(check bool) "lists nodes_visited" true (contains traced "nodes_visited")

(* ------------------------------------------------------------------ *)
(* span attributes, scoped collection, trace export, openmetrics       *)

let test_span_raising_child_nests () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  (* a child that raises must still be recorded as a child (the frame is
     popped and attached on the exception path), and the parent's later
     children must not end up nested under the dead child *)
  (try
     Obs.Span.with_ "parent" (fun () ->
         (try Obs.Span.with_ "dies" (fun () -> failwith "boom")
          with Failure _ -> ());
         Obs.Span.with_ "after" (fun () -> ());
         failwith "parent-boom")
   with Failure _ -> ());
  let r = Obs.Report.capture () in
  Alcotest.(check (list string))
    "parent is the only root" [ "parent" ]
    (List.map (fun (s : Obs.Report.span) -> s.name) r.Obs.Report.spans);
  let parent = List.hd r.Obs.Report.spans in
  Alcotest.(check (list string))
    "both children recorded, in order" [ "dies"; "after" ]
    (List.map (fun (s : Obs.Report.span) -> s.name) parent.children);
  Alcotest.(check int) "span_count counts the forest" 3
    (Obs.Report.span_count r)

let test_with_enabled_toggle_mid_span () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  (* disabling inside an open span must not corrupt the stack: the outer
     span still closes and attaches correctly afterwards *)
  Obs.Span.with_ "outer" (fun () ->
      Obs.with_enabled false (fun () ->
          Obs.Span.with_ "invisible" (fun () -> ());
          Obs.with_enabled true (fun () ->
              Obs.Span.with_ "visible-again" (fun () -> ())));
      Obs.Span.with_ "tail" (fun () -> ()));
  let r = Obs.Report.capture () in
  Alcotest.(check (list string))
    "one root" [ "outer" ]
    (List.map (fun (s : Obs.Report.span) -> s.name) r.Obs.Report.spans);
  let outer = List.hd r.Obs.Report.spans in
  Alcotest.(check (list string))
    "disabled span dropped, re-enabled + tail kept"
    [ "visible-again"; "tail" ]
    (List.map (fun (s : Obs.Report.span) -> s.name) outer.children)

let test_span_attrs () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  Obs.Span.with_ ~attrs:[ ("|D|", Obs.Int 42); ("strategy", Obs.Str "xpath") ]
    "eval"
    (fun () -> Obs.Span.set_attr "answers" (Obs.Int 7));
  let r = Obs.Report.capture () in
  let s = List.hd r.Obs.Report.spans in
  Alcotest.(check int) "three attrs" 3 (List.length s.attrs);
  (match List.assoc_opt "answers" s.attrs with
  | Some (Obs.Int 7) -> ()
  | _ -> Alcotest.fail "set_attr value missing");
  (* attrs survive the JSON round-trip *)
  let r' = Obs.Report.of_json (Obs.Report.to_json r) in
  let s' = List.hd r'.Obs.Report.spans in
  Alcotest.(check bool) "attrs round-trip" true (s.attrs = s'.attrs);
  Alcotest.(check string) "round-trip fixpoint" (Obs.Report.to_json r)
    (Obs.Report.to_json r')

let test_scope_deltas () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_scope_counter" in
  Obs.Counter.add c 100 (* before the scope: must not be attributed *);
  let (), p =
    Obs.Scope.collect "region" (fun () ->
        Obs.Counter.add c 7;
        let (), inner = Obs.Scope.collect "nested" (fun () -> Obs.Counter.add c 5) in
        Alcotest.(check (list (pair string int)))
          "nested scope sees only its own work"
          [ ("test_scope_counter", 5) ]
          inner.Obs.profile_counters)
  in
  Alcotest.(check (list (pair string int)))
    "outer delta includes nested work, excludes pre-scope work"
    [ ("test_scope_counter", 12) ]
    p.Obs.profile_counters;
  Alcotest.(check int) "global counter unaffected" 112 (Obs.Counter.value c);
  (* record appends to the capture, even when the thunk raises *)
  (try
     Obs.Scope.record ~attrs:[ ("fingerprint", Obs.Str "fp1") ] "req" (fun () ->
         Obs.Counter.add c 3;
         failwith "boom")
   with Failure _ -> ());
  let r = Obs.Report.capture () in
  (match r.Obs.Report.profiles with
  | [ p ] ->
    Alcotest.(check string) "label" "req" p.Obs.profile_label;
    Alcotest.(check (list (pair string int)))
      "raised scope still profiled"
      [ ("test_scope_counter", 3) ]
      p.Obs.profile_counters
  | ps -> Alcotest.fail (Printf.sprintf "expected 1 profile, got %d" (List.length ps)))

let test_trace_export () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let sink = Obs.Trace.start_stream () in
  Obs.Span.with_ "a" (fun () ->
      Obs.Span.with_ ~attrs:[ ("k", Obs.Int 1) ] "b" (fun () -> ()));
  Obs.Span.with_ "c" (fun () -> ());
  let r = Obs.Report.capture () in
  let doc = Obs.Trace.of_report r in
  Alcotest.(check int) "event count = span count" (Obs.Report.span_count r)
    (Obs.Trace.event_count doc);
  (* the document survives our own serialise/parse *)
  let parsed = Obs.Json.of_string (Obs.Json.to_string doc) in
  Alcotest.(check int) "parses back with same event count"
    (Obs.Trace.event_count doc)
    (Obs.Trace.event_count parsed);
  (* the streaming sink saw the same spans as the batch conversion *)
  let streamed = Obs.Trace.stop_stream sink in
  Alcotest.(check int) "streamed count matches" (Obs.Report.span_count r)
    (Obs.Trace.event_count streamed)

let test_openmetrics_render () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_om_counter" in
  Obs.Counter.add c 5;
  let h = Obs.Histogram.make "test_om_latency" in
  Obs.Histogram.clear h;
  Obs.Histogram.observe h 0.002;
  let r = Obs.Report.capture () in
  Obs.Histogram.clear h;
  let text = Obs.Openmetrics.render r in
  let contains needle =
    let lh = String.length text and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub text i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter _total line" true
    (contains "treequery_test_om_counter_total 5");
  Alcotest.(check bool) "counter TYPE line" true
    (contains "# TYPE treequery_test_om_counter counter");
  Alcotest.(check bool) "summary quantile line" true
    (contains "treequery_test_om_latency_seconds{quantile=\"0.5\"}");
  Alcotest.(check bool) "summary count line" true
    (contains "treequery_test_om_latency_seconds_count 1");
  Alcotest.(check bool) "ends with EOF marker" true
    (let tail = "# EOF\n" in
     String.length text >= String.length tail
     && String.sub text (String.length text - String.length tail)
          (String.length tail)
        = tail)

(* OpenMetrics spec audit: every family carries # HELP and # TYPE,
   label values escape backslash/quote/newline, and adversarial label
   values can never break the line structure of the exposition *)
let test_openmetrics_help_and_gauges () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_om_help" in
  Obs.Counter.incr c;
  let r = Obs.Report.capture () in
  let gauges =
    [
      Obs.Openmetrics.gauge ~help:"Build identity."
        ~labels:[ ("version", "1.0.0"); ("strategies", "a,b") ]
        "build_info" 1.0;
      Obs.Openmetrics.gauge "process_start_time_seconds" 1234.5;
    ]
  in
  let text = Obs.Openmetrics.render ~gauges r in
  let lines = String.split_on_char '\n' text in
  let has l = List.mem l lines in
  Alcotest.(check bool) "gauge TYPE" true (has "# TYPE treequery_build_info gauge");
  Alcotest.(check bool) "gauge HELP" true
    (has "# HELP treequery_build_info Build identity.");
  Alcotest.(check bool) "build info sample" true
    (has "treequery_build_info{version=\"1.0.0\",strategies=\"a,b\"} 1");
  Alcotest.(check bool) "start time sample" true
    (has "treequery_process_start_time_seconds 1234.5");
  Alcotest.(check bool) "counter HELP" true
    (has "# HELP treequery_test_om_help Cumulative count of test_om_help events.");
  Alcotest.(check bool) "counter TYPE still present" true
    (has "# TYPE treequery_test_om_help counter")

let test_openmetrics_label_escaping () =
  let adversarial = "a\\b\"c\nd,e{f}g=h" in
  Alcotest.(check string) "escape_label" "a\\\\b\\\"c\\nd,e{f}g=h"
    (Obs.Openmetrics.escape_label adversarial);
  let r = Obs.Report.empty in
  let summary =
    {
      Obs.Openmetrics.metric = "adv latency!";
      labels = [ ("finger print", adversarial); ("q\"k", "\\") ];
      quantiles = [ ("0.5", 0.001) ];
      sum = 0.002;
      count = 2;
    }
  in
  let gauge =
    Obs.Openmetrics.gauge ~help:"multi\nline \\ help"
      ~labels:[ ("v", adversarial) ]
      "adv_gauge" 7.0
  in
  let text = Obs.Openmetrics.render ~gauges:[ gauge ] ~extra:[ summary ] r in
  let lines = String.split_on_char '\n' text in
  (* label names and metric names are sanitized, values escaped: every
     sample line still has the shape name{labels} value *)
  Alcotest.(check bool) "escaped summary line" true
    (List.mem
       ("treequery_adv_latency__seconds{finger_print=\"a\\\\b\\\"c\\nd,e{f}g=h\","
      ^ "q_k=\"\\\\\",quantile=\"0.5\"} 0.001")
       lines);
  Alcotest.(check bool) "escaped gauge line" true
    (List.mem "treequery_adv_gauge{v=\"a\\\\b\\\"c\\nd,e{f}g=h\"} 7" lines);
  Alcotest.(check bool) "escaped help line" true
    (List.mem "# HELP treequery_adv_gauge multi\\nline \\\\ help" lines);
  (* no raw newline survives inside any line: every line is either a
     comment, blank (the final split remnant), or starts with the
     treequery_ prefix *)
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "well-formed line %S" l)
        true
        (l = "" || l.[0] = '#'
        || (String.length l > 10 && String.sub l 0 10 = "treequery_")))
    lines

let prop_openmetrics_escaping_total =
  Helpers.qtest ~count:300 "random label values never break line structure"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 30))
    (fun v ->
      let r = Obs.Report.empty in
      let g = Obs.Openmetrics.gauge ~labels:[ ("k", v) ] "prop_gauge" 1.0 in
      let text = Obs.Openmetrics.render ~gauges:[ g ] r in
      List.for_all
        (fun l ->
          l = "" || l.[0] = '#'
          || (String.length l > 10 && String.sub l 0 10 = "treequery_"))
        (String.split_on_char '\n' text))

let test_bound_fit_slope () =
  let close what expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %.3f near %.3f" what actual expected)
      true
      (Float.abs (actual -. expected) < 0.01)
  in
  close "linear" 1.0
    (Obs.Bound.fit_slope [ (10., 30.); (20., 60.); (40., 120.); (80., 240.) ]);
  close "quadratic" 2.0
    (Obs.Bound.fit_slope [ (10., 100.); (20., 400.); (40., 1600.) ]);
  close "constant" 0.0 (Obs.Bound.fit_slope [ (10., 5.); (100., 5.); (1000., 5.) ]);
  close "degenerate: too few points" 0.0 (Obs.Bound.fit_slope [ (10., 100.) ]);
  close "nonpositive points skipped" 1.0
    (Obs.Bound.fit_slope [ (0., 7.); (10., 30.); (20., 60.); (-3., 9.); (40., 120.) ])

(* -------------------------------------------------------------------- *)
(* Histogram.merge: total over every bucket-population combination        *)

let test_histogram_merge () =
  let mk name = let h = Obs.Histogram.make name in Obs.Histogram.clear h; h in
  (* empty into empty, and empty into populated: no-ops *)
  let a = mk "test_merge_a" and b = mk "test_merge_b" in
  Obs.Histogram.merge ~into:a b;
  Alcotest.(check int) "empty into empty" 0 (Obs.Histogram.count a);
  Obs.Histogram.observe a 0.004;
  Obs.Histogram.observe a 0.008;
  Obs.Histogram.merge ~into:a b;
  Alcotest.(check int) "empty src is a no-op" 2 (Obs.Histogram.count a);
  let s = Obs.Histogram.summary a in
  Alcotest.(check (float 1e-9)) "max untouched" 0.008 s.Obs.max;
  (* populated into empty: the target becomes a copy *)
  Obs.Histogram.merge ~into:b a;
  Alcotest.(check int) "populated into empty: count" 2 (Obs.Histogram.count b);
  Alcotest.(check (float 1e-9)) "populated into empty: max" 0.008
    (Obs.Histogram.summary b).Obs.max;
  (* disjoint buckets: small samples into a large-sample target *)
  let c = mk "test_merge_c" and d = mk "test_merge_d" in
  for _ = 1 to 10 do Obs.Histogram.observe c 0.001 done;
  for _ = 1 to 10 do Obs.Histogram.observe d 1.0 done;
  Obs.Histogram.merge ~into:c d;
  Alcotest.(check int) "disjoint: counts add" 20 (Obs.Histogram.count c);
  let s = Obs.Histogram.summary c in
  Alcotest.(check (float 1e-9)) "disjoint: max from src" 1.0 s.Obs.max;
  Alcotest.(check bool) "disjoint: p25 from target side" true (Obs.Histogram.percentile c 0.25 < 0.01);
  Alcotest.(check bool) "disjoint: p99 from src side" true (Obs.Histogram.percentile c 0.99 > 0.5);
  (* overlapping buckets: same samples both sides, counts double *)
  let e = mk "test_merge_e" and f = mk "test_merge_f" in
  for i = 1 to 50 do
    Obs.Histogram.observe e (float_of_int i /. 1000.0);
    Obs.Histogram.observe f (float_of_int i /. 1000.0)
  done;
  let p50_before = Obs.Histogram.percentile e 0.5 in
  Obs.Histogram.merge ~into:e f;
  Alcotest.(check int) "overlapping: counts add" 100 (Obs.Histogram.count e);
  Alcotest.(check (float 1e-9)) "overlapping: quantiles unchanged"
    p50_before (Obs.Histogram.percentile e 0.5);
  (* merge is cumulative with further observations *)
  Obs.Histogram.observe e 2.0;
  Alcotest.(check (float 1e-9)) "observe after merge" 2.0
    (Obs.Histogram.summary e).Obs.max

(* -------------------------------------------------------------------- *)
(* Obs.Shard: deferred counters/histograms/spans/profiles, merged on the
   installing side — exercised here on the main domain (Shard.run is
   pure DLS bookkeeping, no spawn required) *)

let test_shard_counters_merge () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_shard_counter" in
  let g = Obs.Counter.make "test_shard_gauge" in
  Obs.Counter.add c 5;
  Obs.Counter.record_max g 10;
  let sh = Obs.Shard.create () in
  Obs.Shard.run sh (fun () ->
      Obs.Counter.add c 7;
      Obs.Counter.incr c;
      Obs.Counter.record_max g 3 (* below the global max: must not win *));
  Alcotest.(check int) "global cell untouched before merge" 5
    (Obs.Counter.value c);
  let sh2 = Obs.Shard.create () in
  Obs.Shard.run sh2 (fun () ->
      Obs.Counter.add c 2;
      Obs.Counter.record_max g 42);
  Obs.Shard.merge sh;
  Obs.Shard.merge sh2;
  Alcotest.(check int) "adds sum across shards" 15 (Obs.Counter.value c);
  Alcotest.(check int) "gauge merges by max" 42 (Obs.Counter.value g)

let test_shard_spans_profiles_merge () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let c = Obs.Counter.make "test_shard_scope_counter" in
  let h = Obs.Histogram.make "test_shard_hist" in
  Obs.Histogram.clear h;
  let sh = Obs.Shard.create () in
  Obs.Span.with_ "enclosing" (fun () ->
      let (), profile =
        Obs.Shard.run sh (fun () ->
            Obs.Scope.collect "worker-task" (fun () ->
                Obs.Span.with_ "worker-span" (fun () -> Obs.Counter.add c 9);
                Obs.Histogram.observe h 0.002))
      in
      Obs.Shard.run sh (fun () -> Obs.Scope.note profile);
      Alcotest.(check int) "shard histogram deferred" 0 (Obs.Histogram.count h);
      Obs.Shard.merge sh);
  Alcotest.(check int) "counter merged" 9 (Obs.Counter.value c);
  Alcotest.(check int) "histogram merged" 1 (Obs.Histogram.count h);
  let r = Obs.Report.capture () in
  let enclosing = List.hd r.Obs.Report.spans in
  Alcotest.(check string) "root is the enclosing span" "enclosing"
    enclosing.Obs.Report.name;
  let child_names =
    List.map (fun (s : Obs.Report.span) -> s.name) enclosing.children
  in
  Alcotest.(check bool) "worker spans grafted under it" true
    (List.mem "worker-span" child_names);
  let profiles = r.Obs.Report.profiles in
  Alcotest.(check bool) "worker profile captured" true
    (List.exists (fun (p : Obs.profile) -> p.Obs.profile_label = "worker-task") profiles);
  (* the profile's own counter delta survived the shard indirection *)
  let p =
    List.find (fun (p : Obs.profile) -> p.Obs.profile_label = "worker-task") profiles
  in
  Alcotest.(check bool) "scope saw the shard-routed delta" true
    (List.mem_assoc "test_shard_scope_counter" p.Obs.profile_counters
    && List.assoc "test_shard_scope_counter" p.Obs.profile_counters = 9)

let suite =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "raising child stays nested" `Quick
      test_span_raising_child_nests;
    Alcotest.test_case "with_enabled toggle mid-span" `Quick
      test_with_enabled_toggle_mid_span;
    Alcotest.test_case "span attributes" `Quick test_span_attrs;
    Alcotest.test_case "scoped collection deltas" `Quick test_scope_deltas;
    Alcotest.test_case "chrome trace export" `Quick test_trace_export;
    Alcotest.test_case "openmetrics exposition" `Quick test_openmetrics_render;
    Alcotest.test_case "openmetrics HELP and gauges" `Quick
      test_openmetrics_help_and_gauges;
    Alcotest.test_case "openmetrics label escaping" `Quick
      test_openmetrics_label_escaping;
    prop_openmetrics_escaping_total;
    Alcotest.test_case "bound slope fitting" `Quick test_bound_fit_slope;
    Alcotest.test_case "span survives exception" `Quick test_span_survives_exception;
    Alcotest.test_case "counter reset between runs" `Quick test_counter_reset_between_runs;
    Alcotest.test_case "disabled mode leaves report empty" `Quick test_disabled_mode_empty;
    Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "JSON parser rejects garbage" `Quick test_json_parser_rejects_garbage;
    Alcotest.test_case "tracing changes no results" `Quick test_tracing_changes_no_results;
    Alcotest.test_case "yannakakis semijoin-pass bound" `Quick test_engine_semijoin_bound;
    Alcotest.test_case "hornsat propagation bound" `Quick test_hornsat_linear_witness;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram ungated + registered" `Quick
      test_histogram_ungated_and_registered;
    Alcotest.test_case "explain appends observed counters" `Quick
      test_explain_appends_observed;
    Alcotest.test_case "histogram merge is total" `Quick test_histogram_merge;
    Alcotest.test_case "shard counters merge" `Quick test_shard_counters_merge;
    Alcotest.test_case "shard spans and profiles merge" `Quick
      test_shard_spans_profiles_merge;
  ]
