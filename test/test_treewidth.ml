open Treekit
open Helpers
module G = Treewidth.Graph
module Dc = Treewidth.Decomposition

let test_graph_basics () =
  let g = G.of_edges 5 [ (0, 1); (1, 2); (1, 2); (3, 3) ] in
  Alcotest.(check int) "self-loops and duplicates ignored" 2 (G.edge_count g);
  Alcotest.(check bool) "mem" true (G.mem_edge g 2 1);
  Alcotest.(check (list int)) "neighbors" [ 0; 2 ] (G.neighbors g 1);
  Alcotest.(check int) "degree" 2 (G.degree g 1);
  Alcotest.(check bool) "disconnected" false (G.is_connected g);
  Alcotest.(check bool) "forest" true (G.is_acyclic g);
  G.add_edge g 0 2;
  Alcotest.(check bool) "now cyclic" false (G.is_acyclic g)

let test_exact_treewidth_known_graphs () =
  let check_tw name edges n want =
    Alcotest.(check int) name want (Dc.exact_treewidth (G.of_edges n edges))
  in
  check_tw "single vertex" [] 1 0;
  check_tw "edgeless" [] 5 0;
  check_tw "path P4" [ (0, 1); (1, 2); (2, 3) ] 4 1;
  check_tw "cycle C5" [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] 5 2;
  check_tw "K4" [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] 4 3;
  check_tw "star" [ (0, 1); (0, 2); (0, 3); (0, 4) ] 5 1;
  (* 3x3 grid has treewidth 3 *)
  let grid =
    [ (0,1);(1,2);(3,4);(4,5);(6,7);(7,8);(0,3);(3,6);(1,4);(4,7);(2,5);(5,8) ]
  in
  check_tw "3x3 grid" grid 9 3

let test_validator_rejects () =
  let g = G.of_edges 3 [ (0, 1); (1, 2) ] in
  (* missing vertex 2 *)
  let d1 = { Dc.bags = [| [ 0; 1 ] |]; parent = [| -1 |] } in
  Alcotest.(check bool) "uncovered vertex" true (Result.is_error (Dc.validate g d1));
  (* edge (1,2) in no bag *)
  let d2 = { Dc.bags = [| [ 0; 1 ]; [ 2 ] |]; parent = [| -1; 0 |] } in
  Alcotest.(check bool) "uncovered edge" true (Result.is_error (Dc.validate g d2));
  (* occurrences of 1 disconnected *)
  let d3 =
    { Dc.bags = [| [ 0; 1 ]; [ 0 ]; [ 1; 2 ] |]; parent = [| -1; 0; 1 |] }
  in
  Alcotest.(check bool) "disconnected occurrences" true (Result.is_error (Dc.validate g d3));
  (* a valid one *)
  let d4 = { Dc.bags = [| [ 0; 1 ]; [ 1; 2 ] |]; parent = [| -1; 0 |] } in
  Alcotest.(check bool) "valid accepted" true (Dc.validate g d4 = Ok ());
  Alcotest.(check int) "width 1" 1 (Dc.width d4)

let test_fig4_decomposition () =
  let t = fig4_tree () in
  let g = G.of_tree_structure t in
  Alcotest.(check int) "15 vertices" 15 (G.vertex_count g);
  let d = Dc.of_data_tree t in
  Alcotest.(check bool) "valid" true (Dc.validate g d = Ok ());
  Alcotest.(check int) "width 2 (Figure 4)" 2 (Dc.width d);
  Alcotest.(check int) "exact tree-width 2" 2 (Dc.exact_treewidth g)

let prop_data_tree_decomposition =
  qtest ~count:100 "(Child,NextSibling)-trees have width ≤ 2" (tree_gen ~max_n:60 ())
    (fun t ->
      let g = G.of_tree_structure t in
      let d = Dc.of_data_tree t in
      Dc.validate g d = Ok () && Dc.width d <= 2)

let test_path_tree_width_1 () =
  (* a path tree has no sibling edges: width 1 *)
  let t = Generator.path ~n:30 () in
  let d = Dc.of_data_tree t in
  Alcotest.(check int) "width" 1 (Dc.width d)

let random_graph_gen =
  QCheck2.Gen.(
    let* n = int_range 1 9 in
    let* edges =
      list_size (int_range 0 14)
        (let* u = int_range 0 (n - 1) in
         let* v = int_range 0 (n - 1) in
         return (u, v))
    in
    return (G.of_edges n (List.filter (fun (u, v) -> u <> v) edges)))

let prop_heuristics_upper_bound =
  qtest ~count:150 "heuristic widths are valid upper bounds" random_graph_gen (fun g ->
      let exact = Dc.exact_treewidth g in
      let d1 = Dc.min_degree_heuristic g and d2 = Dc.min_fill_heuristic g in
      Dc.validate g d1 = Ok () && Dc.validate g d2 = Ok ()
      && Dc.width d1 >= exact && Dc.width d2 >= exact)

let prop_elimination_order_sound =
  qtest ~count:100 "any elimination order yields a valid decomposition"
    random_graph_gen (fun g ->
      let n = G.vertex_count g in
      let order = List.init n (fun i -> n - 1 - i) in
      let d = Dc.of_elimination_order g order in
      Dc.validate g d = Ok ())

let test_query_graph_treewidth () =
  let q k =
    (* a k-clique query: all pairs connected by Descendant *)
    let atoms = ref [] in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        atoms :=
          Cqtree.Query.A
            (Axis.Descendant, Printf.sprintf "V%d" i, Printf.sprintf "V%d" j)
          :: !atoms
      done
    done;
    { Cqtree.Query.head = [ "V0" ]; atoms = !atoms }
  in
  Alcotest.(check int) "clique-4 treewidth" 3 (Cqtree.Qgraph.treewidth_exact (q 4));
  Alcotest.(check bool) "upper bound ≥ exact" true
    (Cqtree.Qgraph.treewidth_upper (q 4) >= 3);
  (* acyclic queries have tree-width 1 *)
  let acy =
    Cqtree.Generator.acyclic ~seed:1 ~nvars:6 ~axes:[ Axis.Child; Axis.Descendant ]
      ~labels:Generator.labels_abc ()
  in
  Alcotest.(check int) "acyclic query treewidth" 1 (Cqtree.Qgraph.treewidth_exact acy)

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "exact tree-width on known graphs" `Quick
      test_exact_treewidth_known_graphs;
    Alcotest.test_case "validator rejects broken decompositions" `Quick
      test_validator_rejects;
    Alcotest.test_case "Figure 4 decomposition" `Quick test_fig4_decomposition;
    prop_data_tree_decomposition;
    Alcotest.test_case "path trees have width 1" `Quick test_path_tree_width_1;
    prop_heuristics_upper_bound;
    prop_elimination_order_sound;
    Alcotest.test_case "query-graph tree-width" `Quick test_query_graph_treewidth;
  ]
