(* Properties of the output-sensitive evaluation core: the adaptive
   Nodeset representation, the axis image kernels, the relation store and
   the merge-based descendant view — each checked against a naive
   reference on random inputs. *)
open Helpers
module Nodeset = Treekit.Nodeset
module Tree = Treekit.Tree
module Axis = Treekit.Axis
module Generator = Treekit.Generator
module R = Relkit.Relation
module SJ = Relkit.Structural_join

(* ------------------------------------------------------------------ *)
(* reference model: a bool array *)

let model_of n elts =
  let m = Array.make n false in
  List.iter (fun v -> m.(v) <- true) elts;
  m

let model_elements m =
  let out = ref [] in
  for v = Array.length m - 1 downto 0 do
    if m.(v) then out := v :: !out
  done;
  !out

let set_of n elts =
  let s = Nodeset.create n in
  List.iter (Nodeset.add s) elts;
  s

let agrees m s =
  Nodeset.cardinal s = List.length (model_elements m)
  && Nodeset.elements s = model_elements m
  && (let ok = ref true in
      Array.iteri (fun v b -> if Nodeset.mem s v <> b then ok := false) m;
      !ok)

let nodeset_input =
  QCheck2.Gen.(
    let* n = int_range 1 2_000 in
    let* xs = list_size (int_range 0 300) (int_range 0 (n - 1)) in
    let* ys = list_size (int_range 0 300) (int_range 0 (n - 1)) in
    return (n, xs, ys))

let prop_nodeset_algebra =
  qtest ~count:60 "adaptive nodeset algebra = bool-array model" nodeset_input
    (fun (n, xs, ys) ->
      let a = set_of n xs and b = set_of n ys in
      let ma = model_of n xs and mb = model_of n ys in
      let zip f = Array.init n (fun v -> f ma.(v) mb.(v)) in
      agrees ma a && agrees mb b
      && agrees (zip ( || )) (Nodeset.union a b)
      && agrees (zip ( && )) (Nodeset.inter a b)
      && agrees (zip (fun x y -> x && not y)) (Nodeset.diff a b)
      && agrees (Array.map not ma) (Nodeset.complement a)
      && Nodeset.equal a (set_of n (List.rev xs))
      && Nodeset.subset (Nodeset.inter a b) a)

let prop_nodeset_in_place =
  qtest ~count:60 "in-place union/inter/remove = model" nodeset_input
    (fun (n, xs, ys) ->
      let ma = model_of n xs and mb = model_of n ys in
      let u = set_of n xs in
      Nodeset.union_into u (set_of n ys);
      let i = set_of n xs in
      Nodeset.inter_into i (set_of n ys);
      let r = set_of n xs in
      List.iter (Nodeset.remove r) ys;
      agrees (Array.init n (fun v -> ma.(v) || mb.(v))) u
      && agrees (Array.init n (fun v -> ma.(v) && mb.(v))) i
      && agrees (Array.init n (fun v -> ma.(v) && not mb.(v))) r)

let prop_add_range =
  qtest ~count:60 "add_range = pointwise adds"
    QCheck2.Gen.(
      let* n = int_range 1 2_000 in
      let* ranges =
        list_size (int_range 0 8)
          (let* lo = int_range 0 (n - 1) in
           let* len = int_range 0 (n - 1) in
           return (lo, min (n - 1) (lo + len)))
      in
      return (n, ranges))
    (fun (n, ranges) ->
      let s = Nodeset.create n in
      let m = Array.make n false in
      List.iter
        (fun (lo, hi) ->
          Nodeset.add_range s lo hi;
          for v = lo to hi do
            m.(v) <- true
          done)
        ranges;
      agrees m s)

let prop_of_sorted_array =
  qtest ~count:60 "of_sorted_array = pointwise adds" nodeset_input
    (fun (n, xs, _) ->
      let sorted = Array.of_list (List.sort_uniq compare xs) in
      Nodeset.equal (Nodeset.of_sorted_array n sorted) (set_of n xs))

let test_promotion_boundary () =
  let n = 4_000 in
  let thr = Nodeset.promote_threshold n in
  Alcotest.(check int) "threshold for n=4000" 128 thr;
  let s = Nodeset.create n in
  for v = 0 to thr - 1 do
    Nodeset.add s v
  done;
  Alcotest.(check bool) "sparse at the threshold" true (Nodeset.rep_kind s = `Sparse);
  Nodeset.add s thr;
  Alcotest.(check bool) "dense one past the threshold" true
    (Nodeset.rep_kind s = `Dense);
  Alcotest.(check int) "cardinal tracked across promotion" (thr + 1)
    (Nodeset.cardinal s);
  (* shrink back down: hysteresis demotes at half the threshold *)
  let v = ref thr in
  while Nodeset.cardinal s > (thr / 2) + 1 do
    Nodeset.remove s !v;
    decr v
  done;
  Alcotest.(check bool) "still dense above demote threshold" true
    (Nodeset.rep_kind s = `Dense);
  Nodeset.remove s !v;
  Alcotest.(check bool) "sparse at demote threshold" true
    (Nodeset.rep_kind s = `Sparse);
  Alcotest.(check (list int)) "elements survive both switches"
    (List.init (thr / 2) Fun.id)
    (Nodeset.elements s)

let test_threshold_shape () =
  Alcotest.(check int) "small universes use the floor" 16
    (Nodeset.promote_threshold 10);
  Alcotest.(check int) "huge universes hit the cap" 1024
    (Nodeset.promote_threshold 1_000_000);
  let u = Nodeset.universe 4_000 in
  Alcotest.(check bool) "universe of a big tree is dense" true
    (Nodeset.rep_kind u = `Dense);
  Alcotest.(check int) "universe cardinal" 4_000 (Nodeset.cardinal u)

(* ------------------------------------------------------------------ *)
(* axis image kernels vs the O(1) membership predicate *)

let axis_input ~max_n ~max_srcs =
  QCheck2.Gen.(
    let* seed = int_range 0 10_000 in
    let* n = int_range 1 max_n in
    let* srcs = list_size (int_range 0 max_srcs) (int_range 0 (n - 1)) in
    let* wsel = list_size (int_range 0 40) (int_range 0 (n - 1)) in
    return (seed, n, srcs, wsel))

let check_axes t srcs wsel =
  let n = Tree.size t in
  let s = set_of n srcs and w = set_of n wsel in
  List.for_all
    (fun axis ->
      let img = Axis.image t axis s in
      let reference =
        Array.init n (fun v -> List.exists (fun u -> Axis.mem t axis u v) srcs)
      in
      agrees reference img
      && Nodeset.equal (Axis.image_within t axis s w) (Nodeset.inter img w))
    Axis.all

let prop_axis_kernels_selective =
  qtest ~count:25 "axis kernels = mem reference (selective sources, n <= 2000)"
    (axis_input ~max_n:2_000 ~max_srcs:25)
    (fun (seed, n, srcs, wsel) ->
      let t = Generator.random ~seed ~n ~labels:Generator.labels_abc () in
      check_axes t srcs wsel)

let prop_axis_kernels_dense =
  qtest ~count:25 "axis kernels = mem reference (dense sources)"
    (axis_input ~max_n:120 ~max_srcs:120)
    (fun (seed, n, srcs, wsel) ->
      let t = Generator.random ~seed ~n ~labels:Generator.labels_abc () in
      (* force the sweep side of the crossover too *)
      check_axes t srcs wsel && check_axes t (List.init n Fun.id) wsel)

let prop_label_index =
  qtest ~count:50 "label index = naive label scan" (tree_gen ~max_n:200 ())
    (fun t ->
      let n = Tree.size t in
      List.for_all
        (fun l ->
          let naive =
            List.filter (fun v -> Tree.label t v = l) (List.init n Fun.id)
          in
          Tree.nodes_with_label t l = naive
          && Array.to_list (Tree.occurrences t l) = naive
          && Nodeset.elements (Tree.label_set t l) = naive)
        [ "a"; "b"; "c"; "zzz-not-a-label" ])

(* ------------------------------------------------------------------ *)
(* relation store and joins *)

let test_relation_insertion_order () =
  let r = R.create ~name:"ord" ~arity:2 () in
  let input = [ [| 3; 1 |]; [| 1; 1 |]; [| 3; 1 |]; [| 2; 2 |]; [| 1; 1 |]; [| 0; 9 |] ] in
  List.iter (R.add r) input;
  check_tuples "rows keep first-occurrence insertion order"
    [ [| 3; 1 |]; [| 1; 1 |]; [| 2; 2 |]; [| 0; 9 |] ]
    (R.rows r);
  let seen = ref [] in
  R.iter (fun row -> seen := Array.copy row :: !seen) r;
  check_tuples "iter agrees with rows" (R.rows r) (List.rev !seen);
  Alcotest.(check int) "fold visits every row" 4 (R.fold (fun _ k -> k + 1) r 0)

let rows_gen =
  QCheck2.Gen.(
    list_size (int_range 0 120)
      (let* x = int_range (-3) 5 in
       let* y = int_range (-3) 5 in
       return [| x; y |]))

let prop_relation_order =
  qtest ~count:80 "insertion order preserved under dedup" rows_gen (fun rows ->
      let r = R.of_rows ~arity:2 rows in
      let dedup =
        List.rev
          (List.fold_left
             (fun acc row -> if List.mem row acc then acc else row :: acc)
             [] rows)
      in
      R.rows r = dedup)

let prop_packed_join =
  (* exercises the multi-column packed-key path (two columns, small
     ranges) against the literal nested-loop definition *)
  qtest ~count:60 "packed-key equijoin/semijoin = nested loops"
    QCheck2.Gen.(
      let* a = rows_gen in
      let* b = rows_gen in
      return (a, b))
    (fun (ra, rb) ->
      let a = R.of_rows ~arity:2 ra and b = R.of_rows ~arity:2 rb in
      let on = [ (0, 1); (1, 0) ] in
      let join = Relkit.Ops.equijoin ~on a b in
      let theta =
        Relkit.Ops.theta_join
          (fun x y -> x.(0) = y.(1) && x.(1) = y.(0))
          a b
      in
      let semi = Relkit.Ops.semijoin ~on a b in
      let semi_ref =
        Relkit.Ops.select
          (fun x -> R.fold (fun y acc -> acc || (x.(0) = y.(1) && x.(1) = y.(0))) b false)
          a
      in
      R.equal join theta && R.equal semi semi_ref)

let prop_descendant_view_merge =
  qtest ~count:40 "merge descendant view = theta-join definition"
    (tree_gen ~max_n:25 ()) (fun t ->
      let xasr = SJ.store t in
      R.equal (SJ.descendant_view xasr) (SJ.descendant_view_theta xasr))

let suite =
  [
    prop_nodeset_algebra;
    prop_nodeset_in_place;
    prop_add_range;
    prop_of_sorted_array;
    Alcotest.test_case "promotion/demotion boundary" `Quick test_promotion_boundary;
    Alcotest.test_case "threshold shape and universe" `Quick test_threshold_shape;
    prop_axis_kernels_selective;
    prop_axis_kernels_dense;
    prop_label_index;
    Alcotest.test_case "relation insertion order" `Quick test_relation_insertion_order;
    prop_relation_order;
    prop_packed_join;
    prop_descendant_view_merge;
  ]
