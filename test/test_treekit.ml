open Treekit
open Helpers

(* ------------------------------------------------------------------ *)
(* Tree construction and accessors *)

let test_build_fig2 () =
  let t = fig2_tree () in
  Alcotest.(check int) "size" 7 (Tree.size t);
  Alcotest.(check int) "root" 0 (Tree.root t);
  Alcotest.(check string) "root label" "a" (Tree.label t 0);
  Alcotest.(check (list int)) "children of root" [ 1; 4 ] (Tree.children t 0);
  Alcotest.(check (list int)) "children of 1" [ 2; 3 ] (Tree.children t 1);
  Alcotest.(check int) "parent of 6" 4 (Tree.parent t 6);
  Alcotest.(check int) "first_child root" 1 (Tree.first_child t 0);
  Alcotest.(check int) "last_child root" 4 (Tree.last_child t 0);
  Alcotest.(check int) "next_sibling 1" 4 (Tree.next_sibling t 1);
  Alcotest.(check int) "prev_sibling 4" 1 (Tree.prev_sibling t 4);
  Alcotest.(check int) "height" 2 (Tree.height t);
  Alcotest.(check int) "subtree size of 1" 3 (Tree.subtree_size t 1)

let test_post_order_fig2 () =
  let t = fig2_tree () in
  (* Figure 2's post indexes are 1-based: node 1:7, 2:3, 3:1, 4:2, 5:6,
     6:4, 7:5 — 0-based: *)
  let expected = [ 6; 2; 0; 1; 5; 3; 4 ] in
  List.iteri
    (fun v want -> Alcotest.(check int) (Printf.sprintf "post %d" v) want (Tree.post t v))
    expected;
  List.iteri
    (fun i _ ->
      Alcotest.(check int) "post_inv" i (Tree.post t (Tree.node_of_post t i)))
    expected

let test_derived_predicates () =
  let t = fig2_tree () in
  Alcotest.(check bool) "root is root" true (Tree.is_root t 0);
  Alcotest.(check bool) "1 not root" false (Tree.is_root t 1);
  Alcotest.(check bool) "2 leaf" true (Tree.is_leaf t 2);
  Alcotest.(check bool) "1 not leaf" false (Tree.is_leaf t 1);
  Alcotest.(check bool) "1 first sibling" true (Tree.is_first_sibling t 1);
  Alcotest.(check bool) "4 last sibling" true (Tree.is_last_sibling t 4);
  Alcotest.(check bool) "1 not last" false (Tree.is_last_sibling t 1)

let test_single_node () =
  let t = Tree.of_builder (Tree.Node ("x", [])) in
  Alcotest.(check int) "size" 1 (Tree.size t);
  Alcotest.(check bool) "root leaf" true (Tree.is_leaf t 0);
  Alcotest.(check int) "post" 0 (Tree.post t 0);
  Alcotest.(check bool) "valid" true (Tree.validate t = Ok ())

let test_builder_roundtrip () =
  let b =
    Tree.Node ("r", [ Node ("x", [ Node ("y", []) ]); Node ("z", []) ])
  in
  let t = Tree.of_builder b in
  Alcotest.(check bool) "roundtrip" true (Tree.to_builder t = b)

let test_parent_vector_rejects_non_preorder () =
  (* node 1's subtree must be contiguous: parents [|-1; 0; 0; 1|] puts
     node 3 (child of 1) after node 2 (child of 0) — not a pre-order *)
  Alcotest.check_raises "non-preorder" (Invalid_argument
    "Tree.of_parent_vector: not a pre-order parent vector")
    (fun () ->
      ignore
        (Tree.of_parent_vector
           ~parents:[| -1; 0; 0; 1 |]
           ~labels:[| "a"; "a"; "a"; "a" |]
           ()))

let test_parent_vector_rejects_forward_parent () =
  Alcotest.check_raises "forward parent"
    (Invalid_argument "Tree.of_parent_vector: parent must precede node in pre-order")
    (fun () ->
      ignore
        (Tree.of_parent_vector ~parents:[| -1; 2; 0 |] ~labels:[| "a"; "a"; "a" |] ()))

let test_deep_tree () =
  let t = Generator.path ~n:50_000 () in
  Alcotest.(check int) "height" 49_999 (Tree.height t);
  Alcotest.(check bool) "valid" true (Tree.validate t = Ok ());
  Alcotest.(check int) "post of root" 49_999 (Tree.post t 0)

let prop_validate_random =
  qtest ~count:200 "random trees validate" (tree_gen ())
    (fun t -> Tree.validate t = Ok ())

let prop_builder_roundtrip =
  qtest ~count:100 "builder roundtrip" (tree_gen ())
    (fun t -> Tree.equal t (Tree.of_builder (Tree.to_builder t)))

let prop_subtree_size =
  qtest ~count:100 "subtree sizes sum to depth counts" (tree_gen ()) (fun t ->
      (* Σ_v size(v) = Σ_v (depth v + 1) *)
      let n = Tree.size t in
      let a = ref 0 and b = ref 0 in
      for v = 0 to n - 1 do
        a := !a + Tree.subtree_size t v;
        b := !b + Tree.depth t v + 1
      done;
      !a = !b)

(* ------------------------------------------------------------------ *)
(* Orders (Section 2) *)

let test_orders_fig2 () =
  let t = fig2_tree () in
  (* pre order is the node numbering *)
  Alcotest.(check bool) "pre 0<1" true (Order.lt t Order.Pre 0 1);
  (* post: node 2 (post 0) is least *)
  Alcotest.(check int) "post min" 2 (Order.node_of_rank t Order.Post 0);
  (* bflr: 0, then 1 4, then 2 3 5 6 *)
  Alcotest.(check (list int)) "bflr permutation" [ 0; 1; 4; 2; 3; 5; 6 ]
    (Array.to_list (Order.permutation t Order.Bflr))

let prop_order_defined_formulas =
  (* x <pre y ⇔ Child+(x,y) ∨ Following(x,y), etc. (Section 2) *)
  qtest ~count:100 "paper's order definitions" (tree_gen ()) (fun t ->
      let n = Tree.size t in
      let ok = ref true in
      for x = 0 to n - 1 do
        for y = 0 to n - 1 do
          if x <> y then
            List.iter
              (fun k ->
                if Order.lt t k x y <> Order.lt_defined t k x y then ok := false)
              Order.all_kinds
        done
      done;
      !ok)

let prop_pre_post_characterisation =
  (* Child+(x,y) ⇔ x <pre y ∧ y <post x;  Following(x,y) ⇔ x <pre y ∧ x <post y *)
  qtest ~count:100 "pre/post characterisation of axes" (tree_gen ()) (fun t ->
      let n = Tree.size t in
      let ok = ref true in
      for x = 0 to n - 1 do
        for y = 0 to n - 1 do
          let anc = Tree.is_ancestor t x y
          and fol = Tree.is_following t x y in
          let anc' = x < y && Tree.post t y < Tree.post t x in
          let fol' = x < y && Tree.post t x < Tree.post t y in
          if anc <> anc' || (x <> y && fol <> fol') then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Node sets *)

let test_nodeset_basic () =
  let s = Nodeset.create 10 in
  Alcotest.(check bool) "empty" true (Nodeset.is_empty s);
  Nodeset.add s 3;
  Nodeset.add s 7;
  Nodeset.add s 3;
  Alcotest.(check int) "cardinal" 2 (Nodeset.cardinal s);
  Alcotest.(check bool) "mem 3" true (Nodeset.mem s 3);
  Alcotest.(check bool) "mem 4" false (Nodeset.mem s 4);
  Nodeset.remove s 3;
  Alcotest.(check int) "after remove" 1 (Nodeset.cardinal s);
  Alcotest.(check (list int)) "elements" [ 7 ] (Nodeset.elements s);
  Alcotest.(check (option int)) "min" (Some 7) (Nodeset.min_elt s);
  Alcotest.(check (option int)) "max" (Some 7) (Nodeset.max_elt s)

let test_nodeset_ops () =
  let a = Nodeset.of_list 10 [ 1; 2; 3 ] and b = Nodeset.of_list 10 [ 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Nodeset.elements (Nodeset.union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] (Nodeset.elements (Nodeset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Nodeset.elements (Nodeset.diff a b));
  Alcotest.(check int) "complement" 7 (Nodeset.cardinal (Nodeset.complement a));
  Alcotest.(check bool) "subset" true (Nodeset.subset (Nodeset.of_list 10 [ 2 ]) a);
  Alcotest.(check bool) "not subset" false (Nodeset.subset b a)

let prop_nodeset_union_cardinal =
  qtest ~count:200 "inclusion–exclusion"
    QCheck2.Gen.(
      let* n = int_range 1 64 in
      let* xs = list_size (int_range 0 40) (int_range 0 (n - 1)) in
      let* ys = list_size (int_range 0 40) (int_range 0 (n - 1)) in
      return (n, xs, ys))
    (fun (n, xs, ys) ->
      let a = Nodeset.of_list n xs and b = Nodeset.of_list n ys in
      Nodeset.cardinal (Nodeset.union a b) + Nodeset.cardinal (Nodeset.inter a b)
      = Nodeset.cardinal a + Nodeset.cardinal b)

(* ------------------------------------------------------------------ *)
(* Labels *)

let test_label_interning () =
  let tbl = Label.create_table () in
  let a = Label.intern tbl "alpha" in
  let b = Label.intern tbl "beta" in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check int) "idempotent" a (Label.intern tbl "alpha");
  Alcotest.(check string) "name" "beta" (Label.name tbl b);
  Alcotest.(check int) "count" 2 (Label.count tbl);
  Alcotest.(check (option int)) "find" (Some a) (Label.find tbl "alpha");
  Alcotest.(check (option int)) "find missing" None (Label.find tbl "gamma")

let test_label_many () =
  let tbl = Label.create_table () in
  for i = 0 to 999 do
    ignore (Label.intern tbl (string_of_int i))
  done;
  Alcotest.(check int) "1000 labels" 1000 (Label.count tbl);
  Alcotest.(check string) "round trip" "437"
    (Label.name tbl (Label.intern tbl "437"))

(* ------------------------------------------------------------------ *)
(* XML *)

let test_xml_parse () =
  let t = Xml.parse "<r><a x=\"1\"><b/></a><!-- note --><c/></r>" in
  Alcotest.(check int) "size" 4 (Tree.size t);
  Alcotest.(check string) "labels" "r(a(b), c)" (Format.asprintf "%a" Tree.pp t)

let test_xml_skips_text_and_pi () =
  let t = Xml.parse "<?xml version=\"1.0\"?><r>hello <b>world</b> bye</r>" in
  Alcotest.(check int) "size" 2 (Tree.size t)

let test_xml_attr_with_gt () =
  let t = Xml.parse "<r><a title=\"x > y\"/></r>" in
  Alcotest.(check int) "size" 2 (Tree.size t)

let test_xml_errors () =
  let bad input =
    match Xml.parse input with
    | exception Xml.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "mismatch" true (bad "<a><b></a></b>");
  Alcotest.(check bool) "unclosed" true (bad "<a><b>");
  Alcotest.(check bool) "empty" true (bad "   ");
  Alcotest.(check bool) "two roots rejected" true (bad "<a/><b/>")

let test_xml_fragment () =
  let t = Xml.parse_fragment "<a/><b/>" in
  Alcotest.(check string) "wrapped" "#root(a, b)" (Format.asprintf "%a" Tree.pp t)

let prop_xml_roundtrip =
  qtest ~count:100 "xml roundtrip" (tree_gen ()) (fun t ->
      Tree.equal t (Xml.parse (Xml.to_string t)))

(* ------------------------------------------------------------------ *)
(* Events *)

let test_events_fig2 () =
  let t = fig2_tree () in
  let evs = Event.to_list t in
  Alcotest.(check int) "count" 14 (List.length evs);
  (* opens in pre-order, closes in post-order *)
  let opens = List.filter_map (function Event.Open { node; _ } -> Some node | _ -> None) evs in
  let closes = List.filter_map (function Event.Close { node; _ } -> Some node | _ -> None) evs in
  Alcotest.(check (list int)) "opens = pre" [ 0; 1; 2; 3; 4; 5; 6 ] opens;
  Alcotest.(check (list int)) "closes = post order"
    (List.init 7 (Tree.node_of_post t))
    closes

let prop_events_balanced =
  qtest ~count:100 "events nest properly" (tree_gen ()) (fun t ->
      let depth = ref 0 and ok = ref true and count = ref 0 in
      Event.iter t (fun ev ->
          incr count;
          match ev with
          | Event.Open { depth = d; _ } ->
            if d <> !depth then ok := false;
            incr depth
          | Event.Close { depth = d; _ } ->
            decr depth;
            if d <> !depth then ok := false);
      !ok && !depth = 0 && !count = Event.count t)

let prop_events_seq_matches_iter =
  qtest ~count:50 "to_seq = iter" (tree_gen ()) (fun t ->
      let via_iter = ref [] in
      Event.iter t (fun ev -> via_iter := ev :: !via_iter);
      List.rev !via_iter = Event.to_list t)

(* ------------------------------------------------------------------ *)
(* Binary representation (Figure 1) *)

let test_binary_rep_fig2 () =
  let t = fig2_tree () in
  let b = Binary_rep.of_tree t in
  Alcotest.(check int) "n" 7 b.n;
  Alcotest.(check bool) "firstchild edges" true
    (b.first_child = [ (0, 1); (1, 2); (4, 5) ]);
  Alcotest.(check bool) "nextsibling edges" true
    (b.next_sibling = [ (1, 4); (2, 3); (5, 6) ])

let prop_binary_roundtrip =
  qtest ~count:150 "binary representation roundtrip" (tree_gen ()) (fun t ->
      Tree.equal t (Binary_rep.to_tree (Binary_rep.of_tree t)))

let test_binary_rejects_garbage () =
  let broken =
    { Binary_rep.n = 3; first_child = [ (0, 1) ]; next_sibling = [];
      labels = [| "a"; "a"; "a" |] }
  in
  (* node 2 unreachable *)
  Alcotest.(check bool) "unreachable rejected" true
    (match Binary_rep.to_tree broken with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* XASR (Figure 2) *)

let test_xasr_fig2 () =
  let t = fig2_tree () in
  let rows = Labeling.xasr t in
  let expected =
    [
      (1, 7, None, "a");
      (2, 3, Some 1, "b");
      (3, 1, Some 2, "a");
      (4, 2, Some 2, "c");
      (5, 6, Some 1, "a");
      (6, 4, Some 5, "b");
      (7, 5, Some 5, "d");
    ]
  in
  List.iteri
    (fun i (pre, post, parent_pre, lab) ->
      let r = rows.(i) in
      Alcotest.(check int) "pre" pre r.Labeling.pre;
      Alcotest.(check int) "post" post r.Labeling.post;
      Alcotest.(check (option int)) "parent" parent_pre r.Labeling.parent_pre;
      Alcotest.(check string) "lab" lab r.Labeling.lab)
    expected

let prop_xasr_decides_axes =
  qtest ~count:60 "XASR rows decide the axes" (tree_gen ~max_n:15 ()) (fun t ->
      let rows = Labeling.xasr t in
      let n = Tree.size t in
      let ok = ref true in
      let decidable =
        List.filter
          (fun a -> a <> Axis.Next_sibling && a <> Axis.Prev_sibling)
          Axis.all
      in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          List.iter
            (fun a ->
              if Labeling.decide_axis a rows.(u) rows.(v) <> Axis.mem t a u v then
                ok := false)
            decidable
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_all_shapes_catalan () =
  (* Catalan numbers 1, 1, 2, 5, 14, 42 for 1..6 nodes *)
  List.iter
    (fun (n, catalan) ->
      Alcotest.(check int)
        (Printf.sprintf "shapes of size %d" n)
        catalan
        (List.length (Generator.all_shapes ~n)))
    [ (1, 1); (2, 1); (3, 2); (4, 5); (5, 14); (6, 42) ]

let test_all_shapes_distinct () =
  let shapes = Generator.all_shapes ~n:5 in
  let reprs = List.map (Format.asprintf "%a" Tree.pp) shapes in
  Alcotest.(check int) "all distinct" 14 (List.length (List.sort_uniq compare reprs))

let test_generator_shapes () =
  let star = Generator.star ~n:100 () in
  Alcotest.(check int) "star height" 1 (Tree.height star);
  let p = Generator.path ~n:100 () in
  Alcotest.(check int) "path height" 99 (Tree.height p);
  let f = Generator.full ~fanout:3 ~depth:4 () in
  Alcotest.(check int) "full size" 121 (Tree.size f);
  Alcotest.(check int) "full height" 4 (Tree.height f)

let test_generator_deterministic () =
  let a = Generator.random ~seed:5 ~n:500 ~labels:Generator.labels_abc () in
  let b = Generator.random ~seed:5 ~n:500 ~labels:Generator.labels_abc () in
  Alcotest.(check bool) "same seed same tree" true (Tree.equal a b);
  let c = Generator.random ~seed:6 ~n:500 ~labels:Generator.labels_abc () in
  Alcotest.(check bool) "different seed different tree" false (Tree.equal a c)

let test_generator_deep_bias () =
  let shallow = Generator.random_deep ~seed:1 ~n:2000 ~labels:Generator.labels_abc ~descend_bias:0.2 () in
  let deep = Generator.random_deep ~seed:1 ~n:2000 ~labels:Generator.labels_abc ~descend_bias:0.95 () in
  Alcotest.(check bool) "bias increases depth" true (Tree.height deep > Tree.height shallow)

let test_xmark () =
  let t = Generator.xmark ~seed:3 ~scale:2 () in
  Alcotest.(check string) "root" "site" (Tree.label t 0);
  Alcotest.(check bool) "valid" true (Tree.validate t = Ok ());
  Alcotest.(check bool) "has items" true (Tree.nodes_with_label t "item" <> [])

let suite =
  [
    Alcotest.test_case "build fig2" `Quick test_build_fig2;
    Alcotest.test_case "post order fig2" `Quick test_post_order_fig2;
    Alcotest.test_case "derived predicates" `Quick test_derived_predicates;
    Alcotest.test_case "single node" `Quick test_single_node;
    Alcotest.test_case "builder roundtrip" `Quick test_builder_roundtrip;
    Alcotest.test_case "reject non-preorder vector" `Quick test_parent_vector_rejects_non_preorder;
    Alcotest.test_case "reject forward parent" `Quick test_parent_vector_rejects_forward_parent;
    Alcotest.test_case "deep tree (50k path)" `Quick test_deep_tree;
    prop_validate_random;
    prop_builder_roundtrip;
    prop_subtree_size;
    Alcotest.test_case "orders on fig2" `Quick test_orders_fig2;
    prop_order_defined_formulas;
    prop_pre_post_characterisation;
    Alcotest.test_case "nodeset basics" `Quick test_nodeset_basic;
    Alcotest.test_case "nodeset operations" `Quick test_nodeset_ops;
    prop_nodeset_union_cardinal;
    Alcotest.test_case "label interning" `Quick test_label_interning;
    Alcotest.test_case "label scaling" `Quick test_label_many;
    Alcotest.test_case "xml parse" `Quick test_xml_parse;
    Alcotest.test_case "xml text/PI skipped" `Quick test_xml_skips_text_and_pi;
    Alcotest.test_case "xml attr with >" `Quick test_xml_attr_with_gt;
    Alcotest.test_case "xml errors" `Quick test_xml_errors;
    Alcotest.test_case "xml fragment" `Quick test_xml_fragment;
    prop_xml_roundtrip;
    Alcotest.test_case "events fig2" `Quick test_events_fig2;
    prop_events_balanced;
    prop_events_seq_matches_iter;
    Alcotest.test_case "binary rep fig2" `Quick test_binary_rep_fig2;
    prop_binary_roundtrip;
    Alcotest.test_case "binary rep rejects garbage" `Quick test_binary_rejects_garbage;
    Alcotest.test_case "XASR fig2 matches the paper" `Quick test_xasr_fig2;
    prop_xasr_decides_axes;
    Alcotest.test_case "all_shapes = Catalan" `Quick test_all_shapes_catalan;
    Alcotest.test_case "all_shapes distinct" `Quick test_all_shapes_distinct;
    Alcotest.test_case "generator extreme shapes" `Quick test_generator_shapes;
    Alcotest.test_case "generator determinism" `Quick test_generator_deterministic;
    Alcotest.test_case "generator depth bias" `Quick test_generator_deep_bias;
    Alcotest.test_case "xmark document" `Quick test_xmark;
  ]
