open Treekit
open Helpers
module D = Mdatalog

let parse = D.Parser.parse

let test_parser () =
  let p =
    parse
      {| p0(X) :- lab(X, "l").
         p0(X0) :- nextsibling(X0, X), p0(X).
         p(X0) :- firstchild(X0, X), p0(X).
         p0(X) :- p(X).
         ?- p. |}
  in
  Alcotest.(check int) "rules" 4 (List.length p.rules);
  Alcotest.(check string) "query" "p" p.query;
  Alcotest.(check (list string)) "intensional" [ "p0"; "p" ] (D.Ast.intensional p);
  Alcotest.(check bool) "well-formed" true (D.Ast.check p = Ok ())

let test_parser_roundtrip () =
  let p = D.Examples.has_ancestor_labeled "z" in
  let printed = Format.asprintf "%a" D.Ast.pp_program p in
  let p2 = parse printed in
  Alcotest.(check bool) "roundtrip" true (p = p2)

let test_parser_errors () =
  let bad input =
    match parse input with exception D.Parser.Syntax_error _ -> true | _ -> false
  in
  Alcotest.(check bool) "missing query" true (bad {| p(X) :- root(X). |});
  Alcotest.(check bool) "binary as unary" true (bad {| p(X) :- firstchild(X). ?- p. |});
  Alcotest.(check bool) "head not intensional" true (bad {| root(X) :- leaf(X). ?- root. |});
  Alcotest.(check bool) "lab without label" true (bad {| p(X) :- lab(X). ?- p. |})

let test_check_rejects () =
  let unsafe =
    { D.Ast.rules = [ { head = "p"; head_var = "X"; body = [ U (Root, "Y") ] } ];
      query = "p" }
  in
  Alcotest.(check bool) "unsafe rule" true (Result.is_error (D.Ast.check unsafe));
  let cyclic =
    parse
      {| p(X) :- firstchild(X, Y), nextsibling(X, Y). ?- p. |}
  in
  Alcotest.(check bool) "cyclic rule" true (Result.is_error (D.Ast.check cyclic))

let test_example_31 () =
  let t = fig2_tree () in
  (* P marks the (proper) ancestors of nodes labeled "b": nodes 0 and 4 *)
  let p = D.Examples.has_ancestor_labeled "b" in
  check_nodeset "run" (Nodeset.of_list 7 [ 0; 4 ]) (D.Eval.run p t);
  check_nodeset "naive" (Nodeset.of_list 7 [ 0; 4 ]) (D.Eval.run_naive p t);
  (* for label d: only node 4 and the root are ancestors of node 6 *)
  let pd = D.Examples.has_ancestor_labeled "d" in
  check_nodeset "label d" (Nodeset.of_list 7 [ 0; 4 ]) (D.Eval.run pd t);
  (* no ancestor of an a-labeled node other than 0, 1 (2 is a; 0 and 1 above
     it; 4's subtree has no a) *)
  let pa = D.Examples.has_ancestor_labeled "a" in
  check_nodeset "label a" (Nodeset.of_list 7 [ 0; 1 ]) (D.Eval.run pa t)

let test_child_sugar () =
  let t = fig2_tree () in
  let q = parse {| q(X) :- child(X, Y), lab(Y, "b"). ?- q. |} in
  check_nodeset "parents of b" (Nodeset.of_list 7 [ 0; 4 ]) (D.Eval.run q t);
  let q2 = parse {| q(Y) :- child(X, Y), lab(X, "b"). ?- q. |} in
  check_nodeset "children of b" (Nodeset.of_list 7 [ 2; 3 ]) (D.Eval.run q2 t)

let test_tau_plus_unaries () =
  let t = fig2_tree () in
  let eval src = D.Eval.run (parse src) t in
  check_nodeset "root" (Nodeset.of_list 7 [ 0 ]) (eval {| q(X) :- root(X). ?- q. |});
  check_nodeset "leaves" (Nodeset.of_list 7 [ 2; 3; 5; 6 ])
    (eval {| q(X) :- leaf(X). ?- q. |});
  check_nodeset "first siblings" (Nodeset.of_list 7 [ 0; 1; 2; 5 ])
    (eval {| q(X) :- firstsibling(X). ?- q. |});
  check_nodeset "last siblings" (Nodeset.of_list 7 [ 0; 3; 4; 6 ])
    (eval {| q(X) :- lastsibling(X). ?- q. |});
  check_nodeset "dom" (Nodeset.universe 7) (eval {| q(X) :- dom(X). ?- q. |})

let test_env_predicates () =
  let t = fig2_tree () in
  let q = parse {| q(Y) :- start(X), firstchild(X, Y). ?- q. |} in
  let env = [ ("start", Nodeset.of_list 7 [ 0; 4 ]) ] in
  check_nodeset "env" (Nodeset.of_list 7 [ 1; 5 ]) (D.Eval.run ~env q t);
  Alcotest.(check bool) "unbound raises" true
    (match D.Eval.run q t with
    | exception D.Eval.Unbound_predicate "start" -> true
    | _ -> false)

let random_program seed =
  (* small random monadic datalog programs over τ⁺ ∪ {Child} with
     tree-shaped rules of 1–2 binary atoms *)
  let rng = Random.State.make [| seed |] in
  let preds = [| "p"; "q"; "r" |] in
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  let unary () : D.Ast.unary =
    match Random.State.int rng 6 with
    | 0 -> Lab (pick Generator.labels_abc)
    | 1 -> Root
    | 2 -> Leaf
    | 3 -> Last_sibling
    | 4 -> Pred (pick preds)
    | _ -> Dom
  in
  let binary () : D.Ast.binary =
    match Random.State.int rng 3 with
    | 0 -> First_child
    | 1 -> Next_sibling
    | _ -> Child
  in
  let rule () : D.Ast.rule =
    let head = pick preds in
    match Random.State.int rng 3 with
    | 0 -> { head; head_var = "X"; body = [ U (unary (), "X") ] }
    | 1 ->
      let b = binary () in
      let flip = Random.State.bool rng in
      {
        head;
        head_var = "X";
        body =
          [
            (if flip then D.Ast.B (b, "X", "Y") else B (b, "Y", "X")); U (unary (), "Y");
          ];
      }
    | _ ->
      {
        head;
        head_var = "X";
        body = [ B (binary (), "X", "Y"); B (binary (), "Y", "Z"); U (unary (), "Z") ];
      }
  in
  let nrules = 2 + Random.State.int rng 5 in
  let rules = List.init nrules (fun _ -> rule ()) in
  (* every predicate used in a body must have at least one rule, or
     evaluation would see an unbound predicate *)
  let heads = List.map (fun (r : D.Ast.rule) -> r.head) rules in
  let missing =
    List.filter (fun p -> not (List.mem p heads)) (Array.to_list preds)
  in
  let filler p : D.Ast.rule =
    { head = p; head_var = "X"; body = [ U (Lab (pick Generator.labels_abc), "X") ] }
  in
  { D.Ast.rules = rules @ List.map filler missing; query = "p" }

let program_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 5_000 in
    let* tseed = int_range 0 5_000 in
    let* n = int_range 1 25 in
    return (random_program seed, random_tree ~seed:tseed ~n ()))

let prop_hornsat_equals_naive =
  qtest ~count:200 "grounding+Minoux = naive fixpoint" program_gen
    (fun (p, t) ->
      QCheck2.assume (D.Ast.check p = Ok ());
      Nodeset.equal (D.Eval.run p t) (D.Eval.run_naive p t))

let prop_tmnf_preserves_semantics =
  qtest ~count:200 "TMNF translation preserves answers" program_gen
    (fun (p, t) ->
      QCheck2.assume (D.Ast.check p = Ok ());
      let tm = D.Tmnf.of_program p in
      D.Tmnf.is_tmnf tm && Nodeset.equal (D.Eval.run p t) (D.Eval.run tm t))

let test_tmnf_shapes () =
  (* Example 3.1's program is already in TMNF — the translation must
     recognise and preserve that *)
  Alcotest.(check bool) "Example 3.1 already TMNF" true
    (D.Tmnf.is_tmnf (D.Examples.has_ancestor_labeled "b"));
  let p =
    parse
      {| p(X) :- child(X, Y), lab(Y, "b"), leaf(Y), lastsibling(X).
         ?- p. |}
  in
  let tm = D.Tmnf.of_program p in
  Alcotest.(check bool) "is TMNF" true (D.Tmnf.is_tmnf tm);
  Alcotest.(check bool) "original not TMNF (Child, 4 atoms)" true
    (not (D.Tmnf.is_tmnf p));
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Format.asprintf "%a" D.Ast.pp_rule r)
        true (D.Tmnf.is_tmnf_rule r))
    tm.rules

let test_tmnf_size_linear () =
  (* the TMNF translation is linear in program size *)
  let sizes =
    List.map
      (fun k ->
        let body =
          List.concat
            (List.init k (fun i ->
                 [
                   D.Ast.B
                     ( First_child,
                       Printf.sprintf "X%d" i,
                       Printf.sprintf "X%d" (i + 1) );
                 ]))
        in
        let p =
          { D.Ast.rules = [ { head = "p"; head_var = "X0"; body } ]; query = "p" }
        in
        List.length (D.Tmnf.of_program p).rules)
      [ 2; 4; 8; 16 ]
  in
  match sizes with
  | [ s2; s4; s8; s16 ] ->
    Alcotest.(check bool) "roughly doubling" true
      (s4 < 3 * s2 && s8 < 3 * s4 && s16 < 3 * s8)
  | _ -> assert false

let test_ground_size_linear_in_tree () =
  let p = D.Examples.has_ancestor_labeled "b" in
  let size n =
    D.Eval.ground_size p (random_tree ~seed:9 ~n ())
  in
  let s1 = size 500 and s2 = size 1000 and s4 = size 2000 in
  (* Theorem 3.2: O(|P| · |Dom|) — doubling the tree roughly doubles the
     ground program *)
  Alcotest.(check bool) "linear growth" true
    (float_of_int s2 /. float_of_int s1 < 2.5
    && float_of_int s4 /. float_of_int s2 < 2.5
    && s2 > s1 && s4 > s2)

let test_grounding_example () =
  (* ground program of Example 3.1 on the 3-node tree of Example 3.3:
     a root with one child that has one right sibling (FirstChild(1,2),
     NextSibling(2,3)), node 3 labeled L *)
  let t =
    Tree.of_builder (Tree.Node ("x", [ Node ("x", []); Node ("l", []) ]))
  in
  let p = D.Examples.has_ancestor_labeled "l" in
  check_nodeset "P = {root}" (Nodeset.of_list 3 [ 0 ]) (D.Eval.run p t)

let suite =
  [
    Alcotest.test_case "parser" `Quick test_parser;
    Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "check rejects bad programs" `Quick test_check_rejects;
    Alcotest.test_case "Example 3.1 program" `Quick test_example_31;
    Alcotest.test_case "Child sugar" `Quick test_child_sugar;
    Alcotest.test_case "τ⁺ unary predicates" `Quick test_tau_plus_unaries;
    Alcotest.test_case "environment predicates" `Quick test_env_predicates;
    prop_hornsat_equals_naive;
    prop_tmnf_preserves_semantics;
    Alcotest.test_case "TMNF rule shapes" `Quick test_tmnf_shapes;
    Alcotest.test_case "TMNF output size linear" `Quick test_tmnf_size_linear;
    Alcotest.test_case "ground size linear in |Dom| (Thm 3.2)" `Quick
      test_ground_size_linear_in_tree;
    Alcotest.test_case "Example 3.3 scenario" `Quick test_grounding_example;
  ]
