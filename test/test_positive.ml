open Treekit
open Helpers
module P = Cqtree.Positive
module Q = Cqtree.Query

let test_make_validation () =
  Alcotest.(check bool) "empty rejected" true
    (match P.make [] with exception Invalid_argument _ -> true | _ -> false);
  let q1 = Q.of_string {| q(X) :- lab(X, "a"). |} in
  let q2 = Q.of_string {| q(X, Y) :- child(X, Y). |} in
  Alcotest.(check bool) "mixed arity rejected" true
    (match P.make [ q1; q2 ] with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check int) "arity recorded" 2 (P.make [ q2 ]).arity

let test_union_semantics () =
  let t = fig2_tree () in
  let u = P.of_strings
      [ {| q(X) :- lab(X, "c"). |}; {| q(X) :- lab(X, "d"). |} ]
  in
  check_nodeset "c or d" (Nodeset.of_list 7 [ 3; 6 ]) (P.unary u t);
  Alcotest.(check bool) "boolean" true (P.boolean u t);
  let empty = P.of_strings [ {| q :- lab(X, "z1"). |}; {| q :- lab(X, "z2"). |} ] in
  Alcotest.(check bool) "empty union false" false (P.boolean empty t)

let positive_gen =
  QCheck2.Gen.(
    let* seed1 = int_range 0 50_000 in
    let* seed2 = int_range 0 50_000 in
    let* tseed = int_range 0 50_000 in
    let* n = int_range 1 15 in
    let mk seed =
      Cqtree.Generator.arbitrary ~seed ~nvars:3 ~natoms:3
        ~axes:
          [
            Axis.Child; Axis.Descendant; Axis.Next_sibling; Axis.Following_sibling;
            Axis.Following; Axis.Parent;
          ]
        ~labels:Generator.labels_abc ()
    in
    return (P.make [ mk seed1; mk seed2 ], random_tree ~seed:tseed ~n ()))

let prop_positive_equals_naive =
  qtest ~count:200 "union-of-CQs via rewriting = naive" positive_gen
    (fun (u, t) ->
      P.solutions u t = P.solutions_naive u t
      && P.boolean { u with P.disjuncts = List.map (fun q -> { q with Q.head = [] }) u.disjuncts } t
         = P.boolean_naive { u with P.disjuncts = List.map (fun q -> { q with Q.head = [] }) u.disjuncts } t)

let prop_union_is_set_union =
  qtest ~count:100 "solutions = set union of disjunct solutions" positive_gen
    (fun (u, t) ->
      let direct =
        List.sort_uniq compare
          (List.concat_map (fun q -> Cqtree.Naive.solutions q t) u.disjuncts)
      in
      P.solutions u t = direct)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "union semantics" `Quick test_union_semantics;
    prop_positive_equals_naive;
    prop_union_is_set_union;
  ]
