open Treekit
open Helpers
module D = Dynlabel

let build_random ~seed ~inserts =
  let rng = Random.State.make [| seed |] in
  let doc = D.create "r" in
  let nodes = ref [ D.root doc ] in
  let arr = ref [| D.root doc |] in
  for _ = 1 to inserts do
    let v = (!arr).(Random.State.int rng (Array.length !arr)) in
    let lbl = Generator.labels_abc.(Random.State.int rng 3) in
    let n =
      match Random.State.int rng 3 with
      | 0 -> D.insert_last_child doc v lbl
      | 1 -> D.insert_first_child doc v lbl
      | _ -> (
        try D.insert_after doc v lbl
        with Invalid_argument _ -> D.insert_last_child doc v lbl)
    in
    nodes := n :: !nodes;
    arr := Array.append !arr [| n |]
  done;
  (doc, !nodes)

let test_basics () =
  let doc = D.create "r" in
  let r = D.root doc in
  let a = D.insert_last_child doc r "a" in
  let b = D.insert_last_child doc r "b" in
  let a1 = D.insert_last_child doc a "a1" in
  let c = D.insert_after doc a "c" in
  Alcotest.(check int) "size" 5 (D.size doc);
  Alcotest.(check string) "label" "a1" (D.label a1);
  Alcotest.(check bool) "root anc a1" true (D.is_ancestor doc r a1);
  Alcotest.(check bool) "a anc a1" true (D.is_ancestor doc a a1);
  Alcotest.(check bool) "b not anc a1" false (D.is_ancestor doc b a1);
  Alcotest.(check bool) "a1 before c" true (D.is_following doc a1 c);
  Alcotest.(check bool) "c before b" true (D.is_following doc c b);
  Alcotest.(check bool) "c after a" true (D.compare_pre doc a c < 0);
  Alcotest.(check bool) "no sibling of root" true
    (match D.insert_after doc r "x" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* the snapshot has the document order a, a1, c, b under r *)
  let tree, pre_of = D.snapshot doc in
  Alcotest.(check string) "snapshot shape" "r(a(a1), c, b)"
    (Format.asprintf "%a" Tree.pp tree);
  Alcotest.(check int) "pre of root" 0 (pre_of r);
  Alcotest.(check int) "pre of c" 3 (pre_of c)

let prop_matches_snapshot =
  qtest ~count:30 "dynamic tests = static tree on the snapshot"
    QCheck2.Gen.(
      let* seed = int_range 0 10_000 in
      let* inserts = int_range 1 150 in
      return (seed, inserts))
    (fun (seed, inserts) ->
      let doc, nodes = build_random ~seed ~inserts in
      let tree, pre_of = D.snapshot doc in
      Tree.validate tree = Ok ()
      && List.for_all
           (fun u ->
             List.for_all
               (fun v ->
                 let pu = pre_of u and pv = pre_of v in
                 D.is_ancestor doc u v = Tree.is_ancestor tree pu pv
                 && (pu = pv || D.is_following doc u v = Tree.is_following tree pu pv)
                 && compare (D.compare_pre doc u v) 0 = compare (compare pu pv) 0
                 && D.label u = Tree.label tree pu)
               nodes)
           nodes)

let test_adversarial_relabeling () =
  (* hammer one insertion point: forces gap exhaustion and relabeling,
     correctness must survive *)
  let doc = D.create "r" in
  let r = D.root doc in
  for _ = 1 to 2_000 do
    ignore (D.insert_first_child doc r "x")
  done;
  Alcotest.(check bool) "relabeling happened" true (D.relabel_count doc > 0);
  let tree, _ = D.snapshot doc in
  Alcotest.(check bool) "snapshot valid" true (Tree.validate tree = Ok ());
  Alcotest.(check int) "all children of root" 2_000
    (List.length (Tree.children tree 0));
  (* amortised: total relabel work stays well below quadratic *)
  Alcotest.(check bool) "amortised relabeling" true
    (D.relabel_count doc < 2_000 * 200)

let test_deep_chain () =
  let doc = D.create "r" in
  let cur = ref (D.root doc) in
  for _ = 1 to 2_000 do
    cur := D.insert_last_child doc !cur "x"
  done;
  let tree, pre_of = D.snapshot doc in
  Alcotest.(check int) "height" 2_000 (Tree.height tree);
  Alcotest.(check bool) "leaf below root" true
    (D.is_ancestor doc (D.root doc) !cur);
  Alcotest.(check int) "leaf pre" 2_000 (pre_of !cur)

let test_queries_on_snapshot () =
  (* end-to-end: build dynamically, freeze, query with the static engines *)
  let doc = D.create "lib" in
  let r = D.root doc in
  let s1 = D.insert_last_child doc r "shelf" in
  let b1 = D.insert_last_child doc s1 "book" in
  ignore (D.insert_last_child doc b1 "author");
  let b2 = D.insert_after doc b1 "book" in
  ignore b2;
  let tree, _ = D.snapshot doc in
  let answer = Xpath.Eval.query tree (Xpath.Parser.parse "//book[author]") in
  Alcotest.(check int) "one book with author" 1 (Nodeset.cardinal answer)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    prop_matches_snapshot;
    Alcotest.test_case "adversarial relabeling" `Quick test_adversarial_relabeling;
    Alcotest.test_case "deep chain" `Quick test_deep_chain;
    Alcotest.test_case "query the snapshot" `Quick test_queries_on_snapshot;
  ]
