open Helpers
module R = Relkit.Relation
module A = Relkit.Acyclic

let rel rows arity = R.of_rows ~arity rows

(* ------------------------------------------------------------------ *)
(* acyclicity *)

let test_gyo () =
  let r2 () = R.create ~arity:2 () in
  let atom vars = A.make_atom (r2 ()) vars in
  let path =
    { A.head = [ "x" ]; body = [ atom [ "x"; "y" ]; atom [ "y"; "z" ] ] }
  in
  Alcotest.(check bool) "path acyclic" true (A.is_acyclic path);
  let triangle =
    {
      A.head = [ "x" ];
      body = [ atom [ "x"; "y" ]; atom [ "y"; "z" ]; atom [ "z"; "x" ] ];
    }
  in
  Alcotest.(check bool) "triangle cyclic" false (A.is_acyclic triangle);
  (* the classic: adding an atom covering all three variables makes the
     triangle hypergraph acyclic (alpha-acyclicity is not monotone) *)
  let covered =
    {
      triangle with
      A.body = A.make_atom (R.create ~arity:3 ()) [ "x"; "y"; "z" ] :: triangle.body;
    }
  in
  Alcotest.(check bool) "covered triangle acyclic" true (A.is_acyclic covered);
  let disconnected =
    { A.head = []; body = [ atom [ "x"; "y" ]; atom [ "u"; "v" ] ] }
  in
  Alcotest.(check bool) "disconnected acyclic" true (A.is_acyclic disconnected)

let test_small_join () =
  let parent = rel [ [| 0; 1 |]; [| 0; 2 |]; [| 2; 3 |] ] 2 in
  let label_a = rel [ [| 1 |]; [| 3 |] ] 1 in
  let q =
    {
      A.head = [ "x"; "y" ];
      body = [ A.make_atom parent [ "x"; "y" ]; A.make_atom label_a [ "y" ] ];
    }
  in
  (match A.solutions q with
  | Some result ->
    Alcotest.(check bool) "rows" true
      (R.rows_sorted result = [ [| 0; 1 |]; [| 2; 3 |] ])
  | None -> Alcotest.fail "acyclic expected");
  Alcotest.(check bool) "boolean" true (A.boolean q = Some true)

let test_repeated_vars () =
  let r = rel [ [| 1; 1 |]; [| 1; 2 |]; [| 3; 3 |] ] 2 in
  let q = { A.head = [ "x" ]; body = [ A.make_atom r [ "x"; "x" ] ] } in
  match A.solutions q with
  | Some result ->
    Alcotest.(check bool) "diagonal" true (R.rows_sorted result = [ [| 1 |]; [| 3 |] ])
  | None -> Alcotest.fail "acyclic expected"

(* ------------------------------------------------------------------ *)
(* random acyclic queries: Yannakakis = naive *)

let random_acyclic_query seed =
  let rng = Random.State.make [| seed |] in
  let domain = 6 in
  let var i = Printf.sprintf "v%d" i in
  let fresh_var = ref 0 in
  let new_var () =
    incr fresh_var;
    var !fresh_var
  in
  let random_rel arity =
    let rows =
      List.init (Random.State.int rng 10) (fun _ ->
          Array.init arity (fun _ -> Random.State.int rng domain))
    in
    R.of_rows ~arity rows
  in
  let natoms = 1 + Random.State.int rng 4 in
  let atoms = ref [] in
  for _ = 1 to natoms do
    match !atoms with
    | [] ->
      let arity = 1 + Random.State.int rng 2 in
      let vars = List.init arity (fun _ -> new_var ()) in
      atoms := [ A.make_atom (random_rel arity) vars ]
    | existing ->
      (* share one variable with a random existing atom, add fresh ones *)
      let parent = List.nth existing (Random.State.int rng (List.length existing)) in
      let shared =
        List.nth parent.A.vars (Random.State.int rng (List.length parent.A.vars))
      in
      let extra = List.init (Random.State.int rng 2) (fun _ -> new_var ()) in
      let vars = shared :: extra in
      atoms := A.make_atom (random_rel (List.length vars)) vars :: existing
  done;
  let all_vars = List.sort_uniq compare (List.concat_map (fun a -> a.A.vars) !atoms) in
  let head = List.filteri (fun i _ -> i mod 2 = 0) all_vars in
  { A.head; body = !atoms }

let prop_solutions_equal_naive =
  qtest ~count:300 "relational Yannakakis = naive join"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let q = random_acyclic_query seed in
      match A.solutions q with
      | None -> false (* construction is acyclic by construction *)
      | Some fast -> R.equal fast (A.naive_solutions q))

let prop_full_reducer_characterisation =
  (* Section 6: "each tuple in the result of a full reducer contributes to
     a valuation" — and conversely, contributing tuples survive *)
  qtest ~count:200 "full reducer keeps exactly the contributing tuples"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let q = random_acyclic_query seed in
      match A.full_reducer q with
      | None -> false
      | Some reduced ->
        let all_vars =
          List.sort_uniq compare (List.concat_map (fun a -> a.A.vars) q.body)
        in
        let solutions = A.naive_solutions { q with head = all_vars } in
        let value_of sol v =
          let rec pos i = function
            | [] -> assert false
            | w :: _ when w = v -> i
            | _ :: rest -> pos (i + 1) rest
          in
          sol.(pos 0 all_vars)
        in
        List.for_all
          (fun (a : A.atom) ->
            let reduced_rel = List.assoc a.A.name reduced in
            (* normalised column order of the reduced relation: distinct
               variables in first-occurrence order *)
            let cols =
              List.fold_left
                (fun acc v -> if List.mem v acc then acc else acc @ [ v ])
                [] a.A.vars
            in
            let expected =
              R.of_rows ~arity:(List.length cols)
                (List.filter_map
                   (fun sol ->
                     Some (Array.of_list (List.map (value_of sol) cols)))
                   (R.rows solutions))
            in
            R.equal reduced_rel expected)
          q.body)

(* cross-check against the tree engines: materialise axis relations of a
   small tree, run the same acyclic query both ways *)
let prop_tree_crosscheck =
  qtest ~count:100 "relational Yannakakis = tree Yannakakis"
    QCheck2.Gen.(
      let* qseed = int_range 0 50_000 in
      let* tseed = int_range 0 50_000 in
      let* n = int_range 1 12 in
      return (qseed, random_tree ~seed:tseed ~n ()))
    (fun (qseed, t) ->
      let module Q = Cqtree.Query in
      let module Tree = Treekit.Tree in
      let module Axis = Treekit.Axis in
      let axes = [ Axis.Child; Axis.Descendant; Axis.Next_sibling ] in
      let q =
        Cqtree.Generator.acyclic ~seed:qseed ~nvars:3 ~axes
          ~labels:Treekit.Generator.labels_abc ~head_arity:3 ()
      in
      (* materialise the needed relations *)
      let axis_rel a =
        let rows = ref [] in
        for v = 0 to Tree.size t - 1 do
          Axis.fold t a v (fun w () -> rows := [| v; w |] :: !rows) ()
        done;
        R.of_rows ~arity:2 !rows
      in
      let label_rel l =
        R.of_rows ~arity:1
          (List.map (fun v -> [| v |]) (Tree.nodes_with_label t l))
      in
      let body =
        List.map
          (function
            | Q.A (a, x, y) -> A.make_atom (axis_rel a) [ x; y ]
            | Q.U (Q.Lab l, x) -> A.make_atom (label_rel l) [ x ]
            | Q.U (_, _) -> assert false)
          q.atoms
      in
      let rq = { A.head = q.head; body } in
      match A.solutions rq with
      | None -> false
      | Some result ->
        List.sort compare (R.rows result) = Cqtree.Yannakakis.solutions q t)

let test_empty_relation_propagates () =
  let r = rel [ [| 0; 1 |] ] 2 in
  let empty = R.create ~arity:1 () in
  let q =
    {
      A.head = [ "x" ];
      body = [ A.make_atom r [ "x"; "y" ]; A.make_atom empty [ "z" ] ];
    }
  in
  (match A.solutions q with
  | Some result -> Alcotest.(check int) "no solutions" 0 (R.cardinality result)
  | None -> Alcotest.fail "acyclic expected");
  match A.full_reducer q with
  | Some reduced ->
    List.iter
      (fun (_, rel) -> Alcotest.(check int) "all reduced to empty" 0 (R.cardinality rel))
      reduced
  | None -> Alcotest.fail "acyclic expected"

let suite =
  [
    Alcotest.test_case "GYO reduction" `Quick test_gyo;
    Alcotest.test_case "small join" `Quick test_small_join;
    Alcotest.test_case "repeated variables" `Quick test_repeated_vars;
    prop_solutions_equal_naive;
    prop_full_reducer_characterisation;
    prop_tree_crosscheck;
    Alcotest.test_case "empty relation propagates" `Quick test_empty_relation_propagates;
  ]
