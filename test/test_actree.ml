open Treekit
open Helpers
module Q = Cqtree.Query
module AC = Actree.Arc_consistency
module PV = Actree.Prevaluation
module XP = Actree.Xproperty
module XE = Actree.Xeval
module EN = Actree.Enumerate
module TW = Actree.Twigjoin

let tau1 = [ Axis.Descendant; Axis.Descendant_or_self ]
let tau3 =
  [ Axis.Child; Axis.Next_sibling; Axis.Following_sibling; Axis.Following_sibling_or_self ]

(* ------------------------------------------------------------------ *)
(* Arc-consistency (Proposition 6.2) *)

let test_example_61 () =
  (* the paper's Example 6.1 is over general relations; the tree analogue:
     an arc-consistent pre-valuation can exist while the query is cyclic
     and unsatisfiable.  q ← Child(x,y), Child(y,z), Child(x,z) on a path:
     no node is both child and grandchild of the same node. *)
  let t = Generator.path ~n:5 () in
  let q = Q.of_string {| q :- child(X, Y), child(Y, Z), child(X, Z). |} in
  Alcotest.(check bool) "AC exists is irrelevant to satisfiability" true
    (Cqtree.Naive.boolean q t = false)

let ac_case_gen =
  QCheck2.Gen.(
    let* qseed = int_range 0 50_000 in
    let* tseed = int_range 0 50_000 in
    let* nvars = int_range 1 4 in
    let* natoms = int_range 1 4 in
    let* n = int_range 1 14 in
    let q =
      Cqtree.Generator.arbitrary ~seed:qseed ~nvars ~natoms
        ~axes:
          [
            Axis.Child; Axis.Descendant; Axis.Next_sibling; Axis.Following_sibling;
            Axis.Following;
          ]
        ~labels:Generator.labels_abc ()
    in
    return (Q.normalize_forward q, random_tree ~seed:tseed ~n ()))

let prop_direct_equals_hornsat =
  qtest ~count:150 "AC worklist = Prop 6.2 Horn-SAT reduction" ac_case_gen
    (fun (q, t) ->
      match AC.direct q t, AC.via_hornsat q t with
      | None, None -> true
      | Some a, Some b -> PV.equal a b
      | _ -> false)

let prop_ac_result_is_arc_consistent =
  qtest ~count:150 "computed pre-valuation is arc-consistent" ac_case_gen
    (fun (q, t) ->
      match AC.direct q t with
      | None -> true
      | Some pv -> PV.is_arc_consistent q t pv)

let prop_ac_is_maximal =
  qtest ~count:100 "pre-valuation contains every solution" ac_case_gen
    (fun (q, t) ->
      match AC.direct q t with
      | None -> Cqtree.Naive.solutions { q with head = Q.vars q } t = []
      | Some pv ->
        List.for_all
          (fun sol ->
            List.for_all2
              (fun x v -> Nodeset.mem (PV.find pv x) v)
              (Q.vars q) (Array.to_list sol))
          (Cqtree.Naive.solutions { q with head = Q.vars q } t))

(* ------------------------------------------------------------------ *)
(* X-property (Definition 6.3, Proposition 6.6, Theorem 6.8) *)

let prop_66_positive =
  qtest ~count:60 "Proposition 6.6 holds" (tree_gen ~max_n:12 ()) (fun t ->
      List.for_all (fun (a, k) -> XP.check t a k) XP.proposition_66)

let test_xproperty_negative_cases () =
  (* outside Prop. 6.6 the property fails on small witness trees; check a
     few celebrated cases across many trees *)
  let fails_somewhere (a, k) =
    List.exists
      (fun seed -> not (XP.check (random_tree ~seed ~n:10 ()) a k))
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  List.iter
    (fun (a, k) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s wrt %s fails" (Axis.name a) (Order.kind_name k))
        true (fails_somewhere (a, k)))
    [
      (Axis.Child, Order.Pre);
      (Axis.Next_sibling, Order.Pre);
      (Axis.Following, Order.Pre);
      (Axis.Descendant, Order.Bflr);
      (Axis.Following, Order.Bflr);
      (Axis.Child, Order.Post);
      (Axis.Descendant, Order.Post);
    ]

let test_dichotomy_planner () =
  Alcotest.(check bool) "tau1 -> pre" true
    (XP.order_for_signature tau1 = Some Order.Pre);
  Alcotest.(check bool) "tau2 -> post" true
    (XP.order_for_signature [ Axis.Following ] = Some Order.Post);
  Alcotest.(check bool) "tau3 -> bflr" true
    (XP.order_for_signature tau3 = Some Order.Bflr);
  Alcotest.(check bool) "mixed intractable" true
    (XP.order_for_signature [ Axis.Descendant; Axis.Child ] = None);
  Alcotest.(check bool) "following+child intractable" true
    (XP.order_for_signature [ Axis.Following; Axis.Child ] = None);
  Alcotest.(check bool) "empty signature tractable" true
    (XP.order_for_signature [] <> None)

(* Lemma 6.4: the minimum valuation of an AC pre-valuation is consistent
   when the signature has the X-property *)
let xprop_case_gen axes =
  QCheck2.Gen.(
    let* qseed = int_range 0 50_000 in
    let* tseed = int_range 0 50_000 in
    let* nvars = int_range 1 4 in
    let* natoms = int_range 1 4 in
    let* n = int_range 1 16 in
    let q =
      Cqtree.Generator.arbitrary ~seed:qseed ~nvars ~natoms ~axes
        ~labels:Generator.labels_abc ()
    in
    return (Q.normalize_forward q, random_tree ~seed:tseed ~n ()))

let prop_minimum_valuation_tau1 =
  qtest ~count:150 "Lemma 6.4 on tau1 (<pre)" (xprop_case_gen tau1) (fun (q, t) ->
      match AC.direct q t with
      | None -> true
      | Some pv ->
        let theta = PV.minimum_valuation t Order.Pre pv in
        Cqtree.Naive.holds q t (fun x -> List.assoc x theta))

let prop_minimum_valuation_tau3 =
  qtest ~count:150 "Lemma 6.4 on tau3 (<bflr)" (xprop_case_gen tau3) (fun (q, t) ->
      match AC.direct q t with
      | None -> true
      | Some pv ->
        let theta = PV.minimum_valuation t Order.Bflr pv in
        Cqtree.Naive.holds q t (fun x -> List.assoc x theta))

let prop_minimum_valuation_tau2 =
  qtest ~count:150 "Lemma 6.4 on tau2 (<post)" (xprop_case_gen [ Axis.Following ])
    (fun (q, t) ->
      match AC.direct q t with
      | None -> true
      | Some pv ->
        let theta = PV.minimum_valuation t Order.Post pv in
        Cqtree.Naive.holds q t (fun x -> List.assoc x theta))

(* Theorem 6.5 / k-ary evaluation *)
let prop_xeval_boolean =
  qtest ~count:200 "Theorem 6.5 Boolean = naive (cyclic allowed)"
    (xprop_case_gen tau3) (fun (q, t) ->
      let qb = { q with Q.head = [] } in
      match XE.boolean qb t with
      | None -> false
      | Some b -> b = Cqtree.Naive.boolean qb t)

let prop_xeval_solutions =
  qtest ~count:80 "k-ary X-property evaluation = naive" (xprop_case_gen tau1)
    (fun (q, t) ->
      QCheck2.assume (List.length (Q.vars q) <= 3);
      match XE.solutions q t with
      | None -> false
      | Some sols -> sols = Cqtree.Naive.solutions q t)

let test_xeval_witness () =
  let t = fig2_tree () in
  let q = Q.of_string {| q :- lab(X, "b"), descendant(X, Y), lab(Y, "c"). |} in
  (match XE.witness q t with
  | Some (Some theta) ->
    Alcotest.(check int) "X -> 1" 1 (List.assoc "X" theta);
    Alcotest.(check int) "Y -> 3" 3 (List.assoc "Y" theta)
  | _ -> Alcotest.fail "expected a witness");
  let q2 = Q.of_string {| q :- lab(X, "d"), descendant(X, Y). |} in
  Alcotest.(check bool) "unsat -> no witness" true (XE.witness q2 t = Some None);
  let q3 = Q.of_string {| q :- child(X, Y), descendant(Y, Z). |} in
  Alcotest.(check bool) "mixed signature unsupported" true (XE.witness q3 t = None)

(* ------------------------------------------------------------------ *)
(* Figure 6 enumeration *)

let acyclic_gen =
  QCheck2.Gen.(
    let* qseed = int_range 0 50_000 in
    let* tseed = int_range 0 50_000 in
    let* nvars = int_range 1 5 in
    let* n = int_range 1 20 in
    let q =
      Cqtree.Generator.acyclic ~seed:qseed ~nvars
        ~axes:
          [ Axis.Child; Axis.Descendant; Axis.Next_sibling; Axis.Ancestor; Axis.Following ]
        ~labels:Generator.labels_abc ~head_arity:nvars ()
    in
    return (q, random_tree ~seed:tseed ~n ()))

let prop_fig6_equals_naive =
  qtest ~count:200 "Figure 6 enumeration = naive all-solutions" acyclic_gen
    (fun (q, t) ->
      match EN.solutions q t with
      | None -> false
      | Some sols -> sols = Cqtree.Naive.solutions q t)

let prop_fig6_count =
  qtest ~count:100 "count = number of satisfactions" acyclic_gen (fun (q, t) ->
      match EN.count q t, EN.satisfactions q t with
      | Some c, Some sats -> c = List.length sats
      | _ -> false)

let prop_fig6_no_dead_ends =
  (* Proposition 6.9: every node of the maximal AC pre-valuation of an
     acyclic query participates in a solution *)
  qtest ~count:100 "Prop 6.9: every pre-valuation node is in a solution"
    acyclic_gen (fun (q, t) ->
      let q = Q.normalize_forward q in
      match AC.direct q t, EN.satisfactions q t with
      | None, _ -> true
      | Some pv, Some sats ->
        List.for_all
          (fun (x, s) ->
            Nodeset.fold
              (fun v acc -> acc && List.exists (fun theta -> List.assoc x theta = v) sats)
              s true)
          pv
      | Some _, None -> false)

let test_fig6_rejects_cyclic () =
  let q = Q.of_string {| q(X) :- child(X, Y), child(Y, Z), descendant(X, Z). |} in
  Alcotest.(check bool) "cyclic rejected" true
    (EN.solutions q (fig2_tree ()) = None)

(* ------------------------------------------------------------------ *)
(* Twig joins *)

let test_pathstack_simple () =
  let t = fig2_tree () in
  let p = [ (Some "a", TW.Descendant_edge); (Some "b", TW.Descendant_edge) ] in
  let sols = TW.path_stack t p in
  (* a-nodes with a b-descendant: (0,1), (0,5), (4,5) *)
  check_tuples "a//b" [ [| 0; 1 |]; [| 0; 5 |]; [| 4; 5 |] ] sols;
  let p2 = [ (Some "a", TW.Descendant_edge); (Some "b", TW.Child_edge) ] in
  check_tuples "a/b" [ [| 0; 1 |]; [| 4; 5 |] ] (TW.path_stack t p2)

let test_pathstack_single_node () =
  let t = fig2_tree () in
  check_tuples "single b" [ [| 1 |]; [| 5 |] ]
    (TW.path_stack t [ (Some "b", TW.Descendant_edge) ])

let test_pathstack_wildcard () =
  let t = fig2_tree () in
  let sols = TW.path_stack t [ (None, TW.Descendant_edge); (Some "d", TW.Child_edge) ] in
  check_tuples "parent of d" [ [| 4; 6 |] ] sols

let twig_gen =
  QCheck2.Gen.(
    let* qseed = int_range 0 50_000 in
    let* tseed = int_range 0 50_000 in
    let* nvars = int_range 1 5 in
    let* n = int_range 1 40 in
    let q =
      Cqtree.Generator.acyclic ~seed:qseed ~nvars
        ~axes:[ Axis.Child; Axis.Descendant ] ~labels:Generator.labels_abc
        ~head_arity:nvars ()
    in
    return (q, random_tree ~seed:tseed ~n ()))

let prop_twig_equals_yannakakis =
  qtest ~count:250 "twig join = Yannakakis" twig_gen (fun (q, t) ->
      match TW.of_query q with
      | None -> QCheck2.assume_fail ()
      | Some twig ->
        TW.solutions t twig = Cqtree.Yannakakis.solutions (TW.to_query twig) t)

let prop_pathstack_equals_yannakakis =
  qtest ~count:200 "PathStack = Yannakakis on path patterns"
    QCheck2.Gen.(
      let* seed = int_range 0 50_000 in
      let* tseed = int_range 0 50_000 in
      let* len = int_range 1 4 in
      let* n = int_range 1 40 in
      return (seed, len, random_tree ~seed:tseed ~n ()))
    (fun (seed, len, t) ->
      let rng = Random.State.make [| seed |] in
      let specs =
        List.init len (fun _ ->
            ( (if Random.State.int rng 4 = 0 then None
               else Some Generator.labels_abc.(Random.State.int rng 3)),
              if Random.State.bool rng then TW.Child_edge else TW.Descendant_edge ))
      in
      let twig = TW.path specs in
      TW.path_stack t specs = TW.solutions t twig
      && TW.solutions t twig = Cqtree.Yannakakis.solutions (TW.to_query twig) t)

let test_twig_of_query () =
  let q = Q.of_string {| q(X, Y, Z) :- lab(X, "a"), child(X, Y), lab(Y, "b"), descendant(X, Z). |} in
  Alcotest.(check bool) "twig recognised" true (TW.of_query q <> None);
  let q2 = Q.of_string {| q(X, Y) :- following(X, Y). |} in
  Alcotest.(check bool) "non-twig rejected" true (TW.of_query q2 = None)

let suite =
  [
    Alcotest.test_case "AC vs satisfiability (Ex. 6.1 analogue)" `Quick test_example_61;
    prop_direct_equals_hornsat;
    prop_ac_result_is_arc_consistent;
    prop_ac_is_maximal;
    prop_66_positive;
    Alcotest.test_case "X-property fails outside Prop 6.6" `Quick
      test_xproperty_negative_cases;
    Alcotest.test_case "dichotomy planner (Thm 6.8)" `Quick test_dichotomy_planner;
    prop_minimum_valuation_tau1;
    prop_minimum_valuation_tau3;
    prop_minimum_valuation_tau2;
    prop_xeval_boolean;
    prop_xeval_solutions;
    Alcotest.test_case "Xeval witnesses" `Quick test_xeval_witness;
    prop_fig6_equals_naive;
    prop_fig6_count;
    prop_fig6_no_dead_ends;
    Alcotest.test_case "Fig 6 rejects cyclic queries" `Quick test_fig6_rejects_cyclic;
    Alcotest.test_case "PathStack basics" `Quick test_pathstack_simple;
    Alcotest.test_case "PathStack single node" `Quick test_pathstack_single_node;
    Alcotest.test_case "PathStack wildcard" `Quick test_pathstack_wildcard;
    prop_twig_equals_yannakakis;
    prop_pathstack_equals_yannakakis;
    Alcotest.test_case "twig recognition" `Quick test_twig_of_query;
  ]
