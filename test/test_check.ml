(* The differential-check harness checking itself:
   - the CI smoke: 200 cases through the full oracle registry, zero
     discrepancies (the dune-runtest twin of the nightly 10k run);
   - the fault-injection acceptance test: a mutated galloping
     intersection must be caught and shrunk to a tiny repro;
   - bit-reproducibility of case generation (the repro-line contract);
   - shrinker sanity on both halves of a case. *)

open Check

let run_with ?(cases = 200) ?(seed = 42) oracles =
  Runner.run { Runner.default with cases; seed; oracles }

let test_smoke_200 () =
  let stats = run_with Oracles.all in
  List.iter
    (fun (name, passes, skips, fails) ->
      Alcotest.(check int) (name ^ " fails") 0 fails;
      Alcotest.(check bool)
        (name ^ " ran something")
        true
        (passes + skips = 200);
      (* every oracle must actually exercise its engines on most cases;
         a registry entry that skips everything guards nothing *)
      Alcotest.(check bool) (name ^ " mostly applicable") true (passes >= 50))
    stats.Runner.per_oracle;
  Alcotest.(check int) "no discrepancies" 0 (Runner.discrepancy_count stats)

let test_at_least_four_engine_pairs () =
  (* the acceptance criterion speaks of >= 4 cross-engine pairs; laws
     aside, we have far more — pin the count so it can only grow *)
  let engine_pairs =
    List.filter
      (fun (o : Oracles.t) ->
        not (String.length o.name >= 4 && String.sub o.name 0 4 = "law-"))
      Oracles.all
  in
  Alcotest.(check bool)
    "at least four engine pairs" true
    (List.length engine_pairs >= 4)

let test_control_oracle_clean () =
  let stats = run_with [ Fault.control ] in
  Alcotest.(check int) "control finds nothing" 0
    (Runner.discrepancy_count stats)

let test_injected_bug_caught_and_shrunk () =
  let stats =
    Runner.run
      { Runner.default with cases = 200; oracles = [ Fault.oracle ]; max_failures = 200 }
  in
  let ds = stats.Runner.discrepancies in
  Alcotest.(check bool) "bug caught" true (List.length ds > 0);
  List.iter
    (fun (d : Runner.discrepancy) ->
      let sz = Treekit.Tree.size d.shrunk.Case.tree in
      if sz > 8 then
        Alcotest.failf "case %d shrunk only to %d nodes:\n%s" d.case_index sz
          (Case.to_string d.shrunk);
      (* the shrunk case must still exhibit the failure *)
      match Fault.oracle.Oracles.run d.shrunk with
      | Oracles.Fail _ -> ()
      | _ -> Alcotest.failf "shrunk case %d no longer fails" d.case_index)
    ds

let test_buggy_inter_is_buggy () =
  (* the mutation drops the last galloping probe: {9} inter {0..9} with a
     skewed size ratio loses element 9 *)
  let n = 16 in
  let small = Treekit.Nodeset.of_list n [ 9 ] in
  let big = Treekit.Nodeset.of_list n [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  Alcotest.(check bool)
    "buggy kernel drops the probe" true
    (Treekit.Nodeset.is_empty (Fault.buggy_inter small big));
  Alcotest.(check bool)
    "correct kernel keeps it" false
    (Treekit.Nodeset.is_empty (Treekit.Nodeset.inter small big))

let test_generation_reproducible () =
  List.iter
    (fun (o : Oracles.t) ->
      for case = 0 to 19 do
        let gen () =
          let rng = Gen.rng_for ~seed:7 ~case ~salt:o.name in
          let tree = Gen.tree Gen.default rng in
          let query = o.gen Gen.default rng in
          Case.to_string { Case.tree; query }
        in
        Alcotest.(check string)
          (Printf.sprintf "%s case %d replays" o.name case)
          (gen ()) (gen ())
      done)
    (Oracles.all @ [ Fault.oracle; Fault.control ])

let test_runs_reproducible () =
  let run () =
    let stats = run_with ~cases:50 [ Fault.oracle ] in
    List.map
      (fun (d : Runner.discrepancy) -> (d.case_index, Case.to_string d.shrunk))
      stats.Runner.discrepancies
  in
  Alcotest.(check bool) "two runs give identical discrepancies" true
    (run () = run ())

let test_tree_shrink_candidates () =
  let t =
    Treekit.Generator.random ~seed:5 ~n:30 ~labels:[| "a"; "b"; "c" |] ()
  in
  let count = ref 0 in
  Seq.iter
    (fun t' ->
      incr count;
      let n' = Treekit.Tree.size t' in
      Alcotest.(check bool) "candidate not larger" true
        (n' <= Treekit.Tree.size t);
      (* rebuildability is the real assertion: of_parent_vector validates
         the pre-order invariant and would have raised *)
      Alcotest.(check bool) "candidate nonempty" true (n' >= 1))
    (Shrink.tree_candidates t);
  Alcotest.(check bool) "has candidates" true (!count > 30)

let test_query_shrink_safety () =
  (* every CQ shrink candidate stays well-formed *)
  let rng = Gen.rng_for ~seed:3 ~case:0 ~salt:"shrink" in
  for _ = 1 to 50 do
    match Gen.cq_arbitrary Gen.default rng with
    | Case.Cq _ as q ->
      List.iter
        (fun q' ->
          match q' with
          | Case.Cq cq ->
            (match Cqtree.Query.check cq with
            | Ok () -> ()
            | Error m -> Alcotest.failf "unsafe shrink candidate: %s" m)
          | _ -> Alcotest.fail "shrink changed the query kind")
        (Shrink.query_candidates q)
    | _ -> Alcotest.fail "generator changed the query kind"
  done

let test_minimize_is_greedy_descent () =
  (* minimising with an always-true predicate must reach a 1-node tree *)
  let t = Treekit.Generator.random ~seed:9 ~n:25 ~labels:[| "b" |] () in
  let c = { Case.tree = t; query = Case.Axis_law Treekit.Axis.Child } in
  let shrunk, steps = Shrink.minimize ~still_fails:(fun _ -> true) c in
  Alcotest.(check int) "down to the root" 1 (Treekit.Tree.size shrunk.Case.tree);
  Alcotest.(check bool) "took steps" true (steps > 0)

let test_oracle_lookup () =
  List.iter
    (fun n ->
      match Oracles.find n with
      | Some o -> Alcotest.(check string) "find is by name" n o.Oracles.name
      | None -> Alcotest.failf "oracle %s not found" n)
    (Oracles.names ());
  Alcotest.(check bool) "unknown name" true (Oracles.find "nope" = None)

let suite =
  [
    Alcotest.test_case "200-case smoke across all oracles" `Quick test_smoke_200;
    Alcotest.test_case "at least four engine pairs" `Quick
      test_at_least_four_engine_pairs;
    Alcotest.test_case "control oracle is clean" `Quick
      test_control_oracle_clean;
    Alcotest.test_case "injected galloping bug caught and shrunk to <= 8 nodes"
      `Quick test_injected_bug_caught_and_shrunk;
    Alcotest.test_case "buggy kernel really drops the last probe" `Quick
      test_buggy_inter_is_buggy;
    Alcotest.test_case "case generation is bit-reproducible" `Quick
      test_generation_reproducible;
    Alcotest.test_case "whole runs are reproducible" `Quick
      test_runs_reproducible;
    Alcotest.test_case "tree shrink candidates stay valid" `Quick
      test_tree_shrink_candidates;
    Alcotest.test_case "cq shrink candidates stay safe" `Quick
      test_query_shrink_safety;
    Alcotest.test_case "greedy minimisation reaches the floor" `Quick
      test_minimize_is_greedy_descent;
    Alcotest.test_case "oracle registry lookup" `Quick test_oracle_lookup;
  ]
