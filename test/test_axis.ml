open Treekit
open Helpers

(* Reference semantics: compute each axis relation from the base relations
   Child and NextSibling by explicit closure — independent of the pre/post
   arithmetic used by the implementation.  Returns a membership function
   backed by matrices computed once per tree. *)
let reference t =
  let n = Tree.size t in
  let mat () = Array.make_matrix n n false in
  let child = mat () and next_sibling = mat () in
  for v = 1 to n - 1 do
    child.(Tree.parent t v).(v) <- true;
    let s = Tree.next_sibling t v in
    if s <> -1 then next_sibling.(v).(s) <- true
  done;
  (let s = Tree.next_sibling t 0 in
   if s <> -1 then next_sibling.(0).(s) <- true);
  let closure base =
    (* transitive (≥1 step) closure, Floyd–Warshall *)
    let c = Array.map Array.copy base in
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        if c.(i).(k) then
          for j = 0 to n - 1 do
            if c.(k).(j) then c.(i).(j) <- true
          done
      done
    done;
    c
  in
  let child_plus = closure child and ns_plus = closure next_sibling in
  let star c x y = x = y || c.(x).(y) in
  let following = mat () in
  for x0 = 0 to n - 1 do
    for y0 = 0 to n - 1 do
      if ns_plus.(x0).(y0) then
        for x = 0 to n - 1 do
          if star child_plus x0 x then
            for y = 0 to n - 1 do
              if star child_plus y0 y then following.(x).(y) <- true
            done
        done
    done
  done;
  fun axis u v ->
    match axis with
    | Axis.Self -> u = v
    | Axis.Child -> child.(u).(v)
    | Axis.Descendant -> child_plus.(u).(v)
    | Axis.Descendant_or_self -> star child_plus u v
    | Axis.Next_sibling -> next_sibling.(u).(v)
    | Axis.Following_sibling -> ns_plus.(u).(v)
    | Axis.Following_sibling_or_self -> star ns_plus u v
    | Axis.Following -> following.(u).(v)
    | Axis.Parent -> child.(v).(u)
    | Axis.Ancestor -> child_plus.(v).(u)
    | Axis.Ancestor_or_self -> star child_plus v u
    | Axis.Prev_sibling -> next_sibling.(v).(u)
    | Axis.Preceding_sibling -> ns_plus.(v).(u)
    | Axis.Preceding_sibling_or_self -> star ns_plus v u
    | Axis.Preceding -> following.(v).(u)

let prop_mem_matches_reference =
  qtest ~count:40 "mem = closure reference" (tree_gen ~max_n:12 ()) (fun t ->
      let n = Tree.size t in
      let ref_mem = reference t in
      let ok = ref true in
      List.iter
        (fun a ->
          for u = 0 to n - 1 do
            for v = 0 to n - 1 do
              if Axis.mem t a u v <> ref_mem a u v then ok := false
            done
          done)
        Axis.all;
      !ok)

let prop_fold_matches_mem =
  qtest ~count:40 "fold enumerates exactly mem, in document order"
    (tree_gen ~max_n:15 ()) (fun t ->
      let n = Tree.size t in
      let ok = ref true in
      List.iter
        (fun a ->
          for u = 0 to n - 1 do
            let nodes = Axis.nodes t a u in
            (* document order *)
            if List.sort compare nodes <> nodes then ok := false;
            let member = Array.make n false in
            List.iter (fun v -> member.(v) <- true) nodes;
            for v = 0 to n - 1 do
              if member.(v) <> Axis.mem t a u v then ok := false
            done
          done)
        Axis.all;
      !ok)

let prop_image_matches_fold =
  qtest ~count:40 "image = union of folds" (tree_gen ~max_n:20 ()) (fun t ->
      let n = Tree.size t in
      let rng = Random.State.make [| Tree.size t |] in
      let ok = ref true in
      List.iter
        (fun a ->
          (* a few random source sets per axis *)
          for _ = 1 to 3 do
            let s = Nodeset.create n in
            for v = 0 to n - 1 do
              if Random.State.bool rng then Nodeset.add s v
            done;
            let img = Axis.image t a s in
            let expected = Nodeset.create n in
            Nodeset.iter
              (fun u -> Axis.fold t a u (fun v () -> Nodeset.add expected v) ())
              s;
            if not (Nodeset.equal img expected) then ok := false
          done)
        Axis.all;
      !ok)

let prop_inverse_involution =
  qtest ~count:30 "axis inversion is an involution and transposes mem"
    (tree_gen ~max_n:12 ()) (fun t ->
      let n = Tree.size t in
      let ok = ref true in
      List.iter
        (fun a ->
          if Axis.inverse (Axis.inverse a) <> a then ok := false;
          for u = 0 to n - 1 do
            for v = 0 to n - 1 do
              if Axis.mem t a u v <> Axis.mem t (Axis.inverse a) v u then ok := false
            done
          done)
        Axis.all;
      !ok)

let prop_count_pairs =
  qtest ~count:40 "count_pairs = brute-force count" (tree_gen ~max_n:15 ()) (fun t ->
      let n = Tree.size t in
      List.for_all
        (fun a ->
          let brute = ref 0 in
          for u = 0 to n - 1 do
            for v = 0 to n - 1 do
              if Axis.mem t a u v then incr brute
            done
          done;
          !brute = Axis.count_pairs t a)
        Axis.all)

let test_axis_names () =
  List.iter
    (fun a ->
      Alcotest.(check (option string))
        (Axis.name a) (Some (Axis.name a))
        (Option.map Axis.name (Axis.of_name (Axis.name a))))
    Axis.all;
  (* the paper's names *)
  Alcotest.(check bool) "child+" true (Axis.of_name "child+" = Some Axis.Descendant);
  Alcotest.(check bool) "child*" true (Axis.of_name "child*" = Some Axis.Descendant_or_self);
  Alcotest.(check bool) "nextsibling+" true
    (Axis.of_name "nextsibling+" = Some Axis.Following_sibling);
  Alcotest.(check bool) "unknown" true (Axis.of_name "sideways" = None)

let test_forward_axes () =
  Alcotest.(check int) "eight forward axes" 8 (List.length Axis.forward);
  List.iter
    (fun a ->
      Alcotest.(check bool) (Axis.name a) (List.mem a Axis.forward) (Axis.is_forward a))
    Axis.all

let test_following_fig2 () =
  let t = fig2_tree () in
  Alcotest.(check (list int)) "following of 1" [ 4; 5; 6 ] (Axis.nodes t Axis.Following 1);
  Alcotest.(check (list int)) "following of 2" [ 3; 4; 5; 6 ] (Axis.nodes t Axis.Following 2);
  Alcotest.(check (list int)) "preceding of 4" [ 1; 2; 3 ] (Axis.nodes t Axis.Preceding 4);
  Alcotest.(check (list int)) "ancestor of 6" [ 0; 4 ] (Axis.nodes t Axis.Ancestor 6)

let suite =
  [
    prop_mem_matches_reference;
    prop_fold_matches_mem;
    prop_image_matches_fold;
    prop_inverse_involution;
    prop_count_pairs;
    Alcotest.test_case "axis names roundtrip" `Quick test_axis_names;
    Alcotest.test_case "forward axis classification" `Quick test_forward_axes;
    Alcotest.test_case "following/preceding on fig2" `Quick test_following_fig2;
  ]
