(* The serving layer:
   - canonical fingerprints: alpha-equivalent CQs and
     parenthesization-variant XPath collapse, structurally distinct
     queries do not (property over generators);
   - plan cache: LRU eviction order, TTL expiry under a fake clock;
   - batch executor: answers (with and without the stream prefilter)
     agree with one-at-a-time engine evaluation, duplicates share;
   - server: closed-loop stats, admission-control rejection, open-loop
     shedding under a fake clock;
   - the cached-vs-cold differential oracle over >= 1k cases. *)

open Treekit
open Helpers
module E = Treequery.Engine

(* ------------------------------------------------------------------ *)
(* fingerprints *)

let fp_x s = E.fingerprint (E.parse_xpath s)
let fp_cq s = E.fingerprint (E.parse_cq s)

let test_fingerprint_variants () =
  (* parenthesization / association variants *)
  Alcotest.(check string)
    "seq association" (fp_x "//a/b/c")
    (fp_x "//a/(b/c)");
  Alcotest.(check string)
    "union association"
    (fp_x "(/a | /b) | /c")
    (fp_x "/a | (/b | /c)");
  Alcotest.(check string)
    "qualifier and association"
    (fp_x "//a[b and (c and d)]")
    (fp_x "//a[(b and c) and d]");
  (* folding top-level qualifier ands into the qualifier list *)
  Alcotest.(check string)
    "and folds into qualifier list"
    (fp_x "//a[b and c]")
    (fp_x "//a[b][c]");
  (* alpha-equivalent CQs *)
  Alcotest.(check string)
    "cq alpha rename"
    (fp_cq {| q(X) :- lab(X, "a"), child(X, Y), lab(Y, "b"). |})
    (fp_cq {| q(U) :- lab(U, "a"), child(U, V), lab(V, "b"). |});
  (* distinct structures stay distinct *)
  Alcotest.(check bool)
    "child /= descendant" false
    (fp_cq {| q(X) :- lab(X, "a"), child(X, Y). |}
    = fp_cq {| q(X) :- lab(X, "a"), descendant(X, Y). |});
  Alcotest.(check bool)
    "different label" false
    (fp_x "//a" = fp_x "//b");
  (* languages never collide: the tag is part of the name *)
  Alcotest.(check bool)
    "language tag differs" false
    (String.sub (fp_x "//a") 0 6 = String.sub (fp_cq {| q(X) :- lab(X, "a"). |}) 0 6)

let test_explain_plan_cache () =
  let q = E.parse_xpath "//a[b]" in
  let hit = E.explain ~plan_cache:`Hit q in
  let miss = E.explain ~plan_cache:`Miss q in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "explain shows fingerprint" true
    (contains hit ("fingerprint: " ^ E.fingerprint q));
  Alcotest.(check bool) "explain shows hit" true (contains hit "plan-cache:  hit");
  Alcotest.(check bool) "explain shows miss" true (contains miss "plan-cache:  miss");
  Alcotest.(check bool) "no plan-cache line by default" false
    (contains (E.explain q) "plan-cache")

(* property: over random CQs, a variable permutation never changes the
   fingerprint, and fingerprint equality coincides with canonical-form
   equality (so distinct structures hash apart) *)
let cq_gen =
  QCheck2.Gen.(
    let* qseed = int_range 0 100_000 in
    let* nvars = int_range 1 4 in
    let* natoms = int_range 1 4 in
    return
      (Cqtree.Generator.arbitrary ~seed:qseed ~nvars ~natoms
         ~axes:[ Axis.Child; Axis.Descendant; Axis.Following; Axis.Next_sibling ]
         ~labels:Generator.labels_abc ()))

let prop_alpha_rename =
  qtest ~count:200 "fingerprint invariant under alpha-renaming" cq_gen (fun q ->
      let renamed = Cqtree.Query.rename (fun v -> "fresh_" ^ v) q in
      E.fingerprint (E.Cq_query q) = E.fingerprint (E.Cq_query renamed))

let prop_fp_iff_canonical =
  qtest ~count:200 "fingerprint equality = canonical equality"
    QCheck2.Gen.(pair cq_gen cq_gen)
    (fun (a, b) ->
      let qa = E.Cq_query a and qb = E.Cq_query b in
      (E.fingerprint qa = E.fingerprint qb) = (E.canonical qa = E.canonical qb))

(* association variants built directly on the AST (the parser can only
   produce some of them) *)
let prop_xpath_reassociation =
  let path_gen =
    QCheck2.Gen.(
      let* seed = int_range 0 100_000 in
      let cfg = { Check.Gen.default with Check.Gen.max_nodes = 8 } in
      let rng = Random.State.make [| seed |] in
      match Check.Gen.xpath ~max_depth:2 cfg rng with
      | Check.Case.Xpath p -> return p
      | _ -> assert false)
  in
  qtest ~count:200 "Seq/Union re-association is canonical"
    QCheck2.Gen.(triple path_gen path_gen path_gen)
    (fun (p1, p2, p3) ->
      let open Xpath.Ast in
      E.fingerprint (E.Xpath_query (Seq (Seq (p1, p2), p3)))
      = E.fingerprint (E.Xpath_query (Seq (p1, Seq (p2, p3))))
      && E.fingerprint (E.Xpath_query (Union (Union (p1, p2), p3)))
         = E.fingerprint (E.Xpath_query (Union (p1, Union (p2, p3)))))

(* ------------------------------------------------------------------ *)
(* plan cache *)

let test_lru_eviction () =
  let c = Serve.Plan_cache.create ~capacity:2 () in
  let q name = E.parse_xpath ("//" ^ name) in
  let outcome (o, _) = o in
  Alcotest.(check bool) "a misses" true (outcome (Serve.Plan_cache.find c (q "a")) = `Miss);
  Alcotest.(check bool) "b misses" true (outcome (Serve.Plan_cache.find c (q "b")) = `Miss);
  Alcotest.(check bool) "a hits" true (outcome (Serve.Plan_cache.find c (q "a")) = `Hit);
  (* b is now least recently used; c's insertion evicts it *)
  Alcotest.(check bool) "c misses" true (outcome (Serve.Plan_cache.find c (q "c")) = `Miss);
  Alcotest.(check bool) "a survived" true (outcome (Serve.Plan_cache.find c (q "a")) = `Hit);
  Alcotest.(check bool) "b was evicted" true (outcome (Serve.Plan_cache.find c (q "b")) = `Miss);
  let s = Serve.Plan_cache.stats c in
  Alcotest.(check int) "evictions" 2 s.Serve.Plan_cache.evictions;
  Alcotest.(check int) "size" 2 s.Serve.Plan_cache.size;
  (* variants share an entry *)
  Alcotest.(check bool) "variant hits" true
    (outcome (Serve.Plan_cache.find c (E.parse_xpath "(//b)")) = `Hit)

let test_ttl_expiry () =
  let now = ref 0.0 in
  let c = Serve.Plan_cache.create ~capacity:8 ~ttl:10.0 ~clock:(fun () -> !now) () in
  let q = E.parse_xpath "//a[b]" in
  let outcome (o, _) = o in
  Alcotest.(check bool) "miss" true (outcome (Serve.Plan_cache.find c q) = `Miss);
  now := 5.0;
  Alcotest.(check bool) "fresh hit" true (outcome (Serve.Plan_cache.find c q) = `Hit);
  now := 16.0;
  Alcotest.(check bool) "expired" true (outcome (Serve.Plan_cache.find c q) = `Miss);
  Alcotest.(check int) "one expiration" 1
    (Serve.Plan_cache.stats c).Serve.Plan_cache.expirations;
  now := 17.0;
  Alcotest.(check bool) "re-cached" true (outcome (Serve.Plan_cache.find c q) = `Hit)

let test_cache_disabled () =
  let c = Serve.Plan_cache.create ~capacity:0 () in
  let q = E.parse_xpath "//a" in
  let outcome (o, _) = o in
  Alcotest.(check bool) "miss" true (outcome (Serve.Plan_cache.find c q) = `Miss);
  Alcotest.(check bool) "still miss" true (outcome (Serve.Plan_cache.find c q) = `Miss);
  Alcotest.(check int) "nothing stored" 0 (Serve.Plan_cache.size c)

(* ------------------------------------------------------------------ *)
(* batch executor *)

let batch_pool =
  [
    "//a";
    "//a/b";
    "//a[b]";
    "//a[b//c]";
    "//b[a and c]";
    "/a/b | //c";
    "//a[not(b)]";
    "//c/following-sibling::*";
  ]

let prop_batch_equals_engine =
  qtest ~count:60 "batch answers = one-at-a-time answers"
    QCheck2.Gen.(pair (tree_gen ()) (int_range 0 1))
    (fun (t, prefilter) ->
      (* duplicates included: index i uses pool.(i mod len) *)
      let queries =
        Array.init 12 (fun i ->
            E.parse_xpath (List.nth batch_pool (i mod List.length batch_pool)))
      in
      let r =
        Serve.Batch.run ~stream_prefilter:(prefilter = 1) t queries
      in
      Array.for_all2
        (fun ans q -> Nodeset.equal ans (E.eval q t))
        r.Serve.Batch.answers queries
      && r.Serve.Batch.distinct = List.length batch_pool)

let test_batch_dedup_shares () =
  let t = fig2_tree () in
  let queries = Array.make 5 (E.parse_xpath "//a[b]") in
  let r = Serve.Batch.run t queries in
  Alcotest.(check int) "one distinct plan" 1 r.Serve.Batch.distinct;
  (* all five answers alias the same evaluation *)
  Array.iter
    (fun a -> Alcotest.(check bool) "shared" true (a == r.Serve.Batch.answers.(0)))
    r.Serve.Batch.answers

(* ------------------------------------------------------------------ *)
(* server *)

let mini_shapes sources =
  Array.of_list
    (List.map
       (fun s -> { Serve.Workload.source = s; query = E.parse_xpath s })
       sources)

let closed_requests n nshapes =
  List.init n (fun i ->
      { Serve.Workload.id = i; shape = i mod nshapes; arrival = None })

let test_server_closed_loop () =
  let t = Generator.xmark ~seed:3 ~scale:8 () in
  let shapes = mini_shapes [ "//mail[date]"; "//item"; "//person/name" ] in
  let cache = Serve.Plan_cache.create () in
  let cfg = Serve.Server.config ~cache ~concurrency:10 ~share:true () in
  let stats = Serve.Server.run cfg t shapes (closed_requests 90 3) in
  Alcotest.(check int) "served" 90 stats.Serve.Server.served;
  Alcotest.(check int) "no rejects" 0 stats.Serve.Server.rejected;
  Alcotest.(check int) "no errors" 0 stats.Serve.Server.errors;
  Alcotest.(check int) "latency samples" 90 stats.Serve.Server.latency.Obs.count;
  let cs = Option.get stats.Serve.Server.cache in
  Alcotest.(check int) "every request hit the cache" 90
    (cs.Serve.Plan_cache.hits + cs.Serve.Plan_cache.misses);
  Alcotest.(check int) "one miss per shape" 3 cs.Serve.Plan_cache.misses;
  (* answers are correct: result_nodes matches independent evaluation *)
  let expect =
    30
    * (Array.fold_left
         (fun a (s : Serve.Workload.shape) ->
           a + Nodeset.cardinal (E.eval s.query t))
         0 shapes)
  in
  Alcotest.(check int) "result nodes" expect stats.Serve.Server.result_nodes

let test_admission_rejects_over_bound () =
  let t = fig2_tree () in
  let shapes = mini_shapes [ "//a[b]" ] in
  (* a deadline so tight no strategy's bound fits *)
  let cfg = Serve.Server.config ~deadline:1e-9 ~ops_per_second:1.0 () in
  let stats = Serve.Server.run cfg t shapes (closed_requests 20 1) in
  Alcotest.(check int) "all rejected" 20 stats.Serve.Server.rejected;
  Alcotest.(check int) "none served" 0 stats.Serve.Server.served;
  Alcotest.(check string) "reason text" "degraded: naive bound exceeded"
    Serve.Server.reject_reason;
  (* the same workload with an affordable budget is served in full *)
  let cfg = Serve.Server.config ~deadline:1.0 ~ops_per_second:1e9 () in
  let stats = Serve.Server.run cfg t shapes (closed_requests 20 1) in
  Alcotest.(check int) "served with budget" 20 stats.Serve.Server.served

let test_open_loop_sheds () =
  (* fake clock: one second per reading, so every batch "takes" seconds
     while open-loop arrivals come at 100 req/s with a 0.5 s deadline —
     the queue falls behind and late requests are shed before admission *)
  let now = ref 0.0 in
  let clock () =
    now := !now +. 1.0;
    !now
  in
  let t = fig2_tree () in
  let shapes = mini_shapes [ "//a" ] in
  let reqs =
    List.init 40 (fun i ->
        { Serve.Workload.id = i; shape = 0; arrival = Some (float_of_int i /. 100.0) })
  in
  let cfg = Serve.Server.config ~deadline:0.5 ~clock () in
  let stats = Serve.Server.run cfg t shapes reqs in
  Alcotest.(check int) "accounted" 40
    (stats.Serve.Server.served + stats.Serve.Server.shed);
  Alcotest.(check bool) "sheds under overload" true (stats.Serve.Server.shed > 0);
  Alcotest.(check bool) "still serves some" true (stats.Serve.Server.served > 0)

let test_workload_generator () =
  let rng = Random.State.make [| 5; 0xda7a |] in
  let shapes = Serve.Workload.shapes ~rng ~count:50 in
  Alcotest.(check int) "fifty shapes" 50 (Array.length shapes);
  let canons =
    Array.to_list (Array.map (fun (s : Serve.Workload.shape) -> E.canonical s.query) shapes)
  in
  Alcotest.(check int) "pairwise distinct canonicals" 50
    (List.length (List.sort_uniq compare canons));
  (* same seed, same workload *)
  let rng' = Random.State.make [| 5; 0xda7a |] in
  let shapes' = Serve.Workload.shapes ~rng:rng' ~count:50 in
  Alcotest.(check bool) "replayable" true
    (Array.for_all2
       (fun (a : Serve.Workload.shape) (b : Serve.Workload.shape) ->
         a.source = b.source)
       shapes shapes');
  (match Serve.Workload.kind_of_string "open:250" with
  | Ok (Serve.Workload.Open_loop { rate }) ->
    Alcotest.(check (float 1e-9)) "rate" 250.0 rate
  | _ -> Alcotest.fail "open:250 should parse");
  (match Serve.Workload.kind_of_string "closed" with
  | Ok Serve.Workload.Closed_loop -> ()
  | _ -> Alcotest.fail "closed should parse");
  (match Serve.Workload.kind_of_string "open:-3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative rate must be rejected")

(* ------------------------------------------------------------------ *)
(* scoped per-request profiles *)

let with_clean_obs f =
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let test_per_request_profiles () =
  with_clean_obs @@ fun () ->
  let t = Generator.xmark ~seed:3 ~scale:8 () in
  let shapes = mini_shapes [ "//mail[date]"; "//item"; "//person/name" ] in
  let cfg = Serve.Server.config ~concurrency:4 ~share:false () in
  let stats =
    Obs.with_enabled true (fun () ->
        Serve.Server.run cfg t shapes (closed_requests 30 3))
  in
  let r = Obs.Report.capture () in
  let profs = r.Obs.Report.profiles in
  Alcotest.(check int) "one profile per served request"
    stats.Serve.Server.served (List.length profs);
  List.iteri
    (fun i (p : Obs.profile) ->
      Alcotest.(check string) "labels follow request ids"
        (Printf.sprintf "request-%d" i)
        p.Obs.profile_label;
      (match List.assoc_opt "fingerprint" p.Obs.profile_attrs with
      | Some (Obs.Str fp) ->
        Alcotest.(check string) "fingerprint is the request's own shape"
          (E.fingerprint shapes.(i mod 3).Serve.Workload.query)
          fp
      | _ -> Alcotest.fail "profile missing fingerprint attr");
      Alcotest.(check bool) "profile saw work" true
        (List.exists (fun (_, v) -> v > 0) p.Obs.profile_counters))
    profs;
  (* interleaved requests each get exactly their own counters: all the
     requests of one shape did identical work, and distinct shapes did
     distinguishable work — impossible if deltas leaked across requests *)
  let by_shape = Hashtbl.create 4 in
  List.iter
    (fun (p : Obs.profile) ->
      match List.assoc_opt "fingerprint" p.Obs.profile_attrs with
      | Some (Obs.Str fp) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_shape fp) in
        Hashtbl.replace by_shape fp (p.Obs.profile_counters :: prev)
      | _ -> ())
    profs;
  Alcotest.(check int) "three shapes profiled" 3 (Hashtbl.length by_shape);
  Hashtbl.iter
    (fun fp runs ->
      List.iter
        (fun counters ->
          Alcotest.(check bool)
            (Printf.sprintf "all %s requests did identical work" fp)
            true
            (counters = List.hd runs))
        runs)
    by_shape;
  let distinct =
    Hashtbl.fold (fun _ runs acc -> List.hd runs :: acc) by_shape []
  in
  Alcotest.(check int) "shapes do distinguishable work" 3
    (List.length (List.sort_uniq compare distinct));
  (* profile sums never exceed the global snapshot totals *)
  let sums = Hashtbl.create 16 in
  List.iter
    (fun (p : Obs.profile) ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace sums k
            (v + Option.value ~default:0 (Hashtbl.find_opt sums k)))
        p.Obs.profile_counters)
    profs;
  Hashtbl.iter
    (fun k v ->
      let glob = Option.value ~default:0 (List.assoc_opt k r.Obs.Report.counters) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: profiled %d <= global %d" k v glob)
        true (v <= glob))
    sums;
  (* p90 is reported on both the text and the JSON path *)
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "p90 in the text report" true
    (contains (Serve.Server.to_text stats) "p90");
  Alcotest.(check bool) "p90_ms in the JSON report" true
    (contains (Obs.Report.to_json r) "p90_ms");
  Alcotest.(check bool) "serve latency histogram captured" true
    (List.mem_assoc "serve_latency" r.Obs.Report.histograms)

let test_share_mode_profiles_per_rep () =
  with_clean_obs @@ fun () ->
  let t = fig2_tree () in
  let shapes = mini_shapes [ "//a"; "//a[b]" ] in
  let cfg = Serve.Server.config ~concurrency:10 ~share:true () in
  ignore
    (Obs.with_enabled true (fun () ->
         Serve.Server.run cfg t shapes (closed_requests 20 2)));
  let r = Obs.Report.capture () in
  (* share mode evaluates each distinct plan once per batch: profiles are
     per-rep, so their sums stay within the global totals even though 20
     requests were answered *)
  Alcotest.(check bool) "some rep profiles recorded" true
    (r.Obs.Report.profiles <> []);
  List.iter
    (fun (p : Obs.profile) ->
      Alcotest.(check bool) "rep labels" true
        (String.length p.Obs.profile_label >= 4
        && String.sub p.Obs.profile_label 0 4 = "rep-");
      match List.assoc_opt "aliased" p.Obs.profile_attrs with
      | Some (Obs.Int _) -> ()
      | _ -> Alcotest.fail "rep profile missing aliased attr")
    r.Obs.Report.profiles;
  let sums = Hashtbl.create 16 in
  List.iter
    (fun (p : Obs.profile) ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace sums k
            (v + Option.value ~default:0 (Hashtbl.find_opt sums k)))
        p.Obs.profile_counters)
    r.Obs.Report.profiles;
  Hashtbl.iter
    (fun k v ->
      let glob = Option.value ~default:0 (List.assoc_opt k r.Obs.Report.counters) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: rep profiles %d <= global %d" k v glob)
        true (v <= glob))
    sums

let test_degrade_logs_fingerprint () =
  let t = fig2_tree () in
  let shapes = mini_shapes [ "//a[b]" ] in
  let cfg = Serve.Server.config ~deadline:1e-9 ~ops_per_second:1.0 () in
  let stats = Serve.Server.run cfg t shapes (closed_requests 5 1) in
  Alcotest.(check int) "every rejection logs the priced plan" 5
    (List.length stats.Serve.Server.degraded);
  List.iter
    (fun (fp, bound) ->
      Alcotest.(check string) "fingerprint of the degraded plan"
        (E.fingerprint (E.parse_xpath "//a[b]"))
        fp;
      Alcotest.(check bool) "priced bound is positive" true (bound > 0.0))
    stats.Serve.Server.degraded

(* ------------------------------------------------------------------ *)
(* domain pool *)

let test_pool_basics () =
  let pool = Serve.Pool.create ~domains:3 () in
  Fun.protect ~finally:(fun () -> Serve.Pool.shutdown pool) @@ fun () ->
  Alcotest.(check int) "size" 3 (Serve.Pool.size pool);
  let results =
    Serve.Pool.run pool (Array.init 20 (fun i () -> i * i))
  in
  Alcotest.(check (array int)) "results in submission order"
    (Array.init 20 (fun i -> i * i))
    results;
  (* back-to-back jobs reuse the same workers *)
  let again = Serve.Pool.run pool (Array.init 5 (fun i () -> -i)) in
  Alcotest.(check (array int)) "second job" [| 0; -1; -2; -3; -4 |] again

let test_pool_exception_drains () =
  let pool = Serve.Pool.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Serve.Pool.shutdown pool) @@ fun () ->
  let ran = Array.make 8 false in
  (match
     Serve.Pool.run pool
       (Array.init 8 (fun i () ->
            ran.(i) <- true;
            if i = 3 then failwith "task-3"))
   with
  | _ -> Alcotest.fail "expected the task exception to re-raise"
  | exception Failure m -> Alcotest.(check string) "first exception" "task-3" m);
  Alcotest.(check bool) "every task still ran" true (Array.for_all Fun.id ran);
  (* the pool survives a failed job *)
  Alcotest.(check (array int)) "usable afterwards" [| 7 |]
    (Serve.Pool.run pool [| (fun () -> 7) |])

let test_pool_size_one_and_shutdown () =
  let pool = Serve.Pool.create () in
  Alcotest.(check int) "default size" 1 (Serve.Pool.size pool);
  Alcotest.(check (array int)) "sequential execution" [| 1; 2 |]
    (Serve.Pool.run pool [| (fun () -> 1); (fun () -> 2) |]);
  Serve.Pool.shutdown pool;
  Serve.Pool.shutdown pool (* idempotent *);
  (match Serve.Pool.run pool [| (fun () -> 0) |] with
  | _ -> Alcotest.fail "run after shutdown must raise"
  | exception Invalid_argument _ -> ());
  (match Serve.Pool.create ~domains:0 () with
  | _ -> Alcotest.fail "create ~domains:0 must raise"
  | exception Invalid_argument _ -> ())

(* pool-executed batches agree with the sequential executor and the
   engine, for each domain count, duplicates included *)
let prop_parallel_batch_equals_sequential =
  qtest ~count:30 "parallel batch = sequential batch = engine"
    (tree_gen ())
    (fun t ->
      Tree.seal t;
      let queries =
        Array.init 12 (fun i ->
            E.parse_xpath (List.nth batch_pool (i mod List.length batch_pool)))
      in
      let prepared = Array.map (fun q -> E.prepare q) queries in
      let seq = Serve.Batch.run_prepared t prepared in
      List.for_all
        (fun domains ->
          let pool = Serve.Pool.create ~domains () in
          Fun.protect ~finally:(fun () -> Serve.Pool.shutdown pool)
          @@ fun () ->
          let par = Serve.Batch.run_prepared ~pool t prepared in
          par.Serve.Batch.distinct = seq.Serve.Batch.distinct
          && Array.for_all2 Nodeset.equal par.Serve.Batch.answers
               seq.Serve.Batch.answers
          && Array.for_all2
               (fun ans q -> Nodeset.equal ans (E.eval q t))
               par.Serve.Batch.answers queries)
        [ 1; 2; 4 ])

(* shard-merged counters across a real multi-domain server run equal the
   single-threaded totals, and the answers agree *)
let test_parallel_server_counters_match () =
  with_clean_obs @@ fun () ->
  let t = fig2_tree () in
  Tree.seal t;
  let shapes = mini_shapes [ "//mail[date]"; "//item"; "//person/name" ] in
  let run ?pool () =
    Obs.reset ();
    let cfg = Serve.Server.config ~concurrency:8 ?pool () in
    let stats =
      Obs.with_enabled true (fun () ->
          Serve.Server.run cfg t shapes (closed_requests 60 3))
    in
    let r = Obs.Report.capture () in
    (stats, r.Obs.Report.counters, List.length r.Obs.Report.profiles)
  in
  let s1, c1, p1 = run () in
  let pool = Serve.Pool.create ~domains:4 () in
  let s4, c4, p4 =
    Fun.protect ~finally:(fun () -> Serve.Pool.shutdown pool) (fun () ->
        run ~pool ())
  in
  Alcotest.(check int) "served" s1.Serve.Server.served s4.Serve.Server.served;
  Alcotest.(check int) "result nodes" s1.Serve.Server.result_nodes
    s4.Serve.Server.result_nodes;
  Alcotest.(check int) "profile count" p1 p4;
  List.iter
    (fun (k, v) ->
      Alcotest.(check int)
        (Printf.sprintf "counter %s" k)
        v
        (Option.value ~default:0 (List.assoc_opt k c4)))
    c1;
  Alcotest.(check int) "no extra counters" (List.length c1) (List.length c4)

(* ------------------------------------------------------------------ *)
(* wall-clock mode and seed-split request streams *)

let test_wall_clock_smoke () =
  let t = fig2_tree () in
  let shapes = mini_shapes [ "//a"; "//a[b]" ] in
  let slept = ref 0.0 in
  let cfg =
    Serve.Server.config ~concurrency:4 ~wall_clock:true
      ~sleep:(fun d -> slept := !slept +. d)
      ()
  in
  (* arrivals far in the future force the sleep path; the injected sleep
     records the waits instead of blocking the test *)
  let reqs =
    List.init 8 (fun i ->
        { Serve.Workload.id = i; shape = i mod 2; arrival = Some 0.0 })
  in
  let stats = Serve.Server.run cfg t shapes reqs in
  Alcotest.(check int) "all served" 8 stats.Serve.Server.served;
  Alcotest.(check bool) "elapsed is wall time" true
    (stats.Serve.Server.elapsed >= 0.0);
  Alcotest.(check int) "latency samples" 8 stats.Serve.Server.latency.Obs.count

let test_requests_split_replayable () =
  let sig_of rs =
    List.map (fun (r : Serve.Workload.request) -> (r.id, r.shape, r.arrival)) rs
  in
  let a =
    Serve.Workload.requests_split ~seed:42 ~shapes:7 ~count:100
      (Serve.Workload.Open_loop { rate = 500.0 })
  in
  let b =
    Serve.Workload.requests_split ~seed:42 ~shapes:7 ~count:100
      (Serve.Workload.Open_loop { rate = 500.0 })
  in
  Alcotest.(check bool) "same seed, same stream" true (sig_of a = sig_of b);
  (* prefix property: the stream is per-request, so a shorter run is a
     prefix of a longer one — independent of consumption or domains *)
  let short =
    Serve.Workload.requests_split ~seed:42 ~shapes:7 ~count:40
      (Serve.Workload.Open_loop { rate = 500.0 })
  in
  let prefix = List.filteri (fun i _ -> i < 40) a in
  Alcotest.(check bool) "count-40 stream is the count-100 prefix" true
    (sig_of short = sig_of prefix);
  let c =
    Serve.Workload.requests_split ~seed:43 ~shapes:7 ~count:100
      (Serve.Workload.Open_loop { rate = 500.0 })
  in
  Alcotest.(check bool) "different seed, different stream" true
    (sig_of a <> sig_of c);
  (* shape indices stay in range and hit more than one shape *)
  Alcotest.(check bool) "shapes in range" true
    (List.for_all (fun (r : Serve.Workload.request) -> r.shape >= 0 && r.shape < 7) a);
  Alcotest.(check bool) "not constant" true
    (List.exists (fun (r : Serve.Workload.request) -> r.shape <> (List.hd a).shape) a)

let test_registrations_split () =
  let module W = Serve.Workload in
  let stream ?(seed = 42) ?(count = 200) ?(churn = 0.25) () =
    W.registrations_split ~seed ~shapes:count ~count ~churn
  in
  let a = stream () and b = stream () in
  Alcotest.(check bool) "same seed, same stream" true (a = b);
  Alcotest.(check bool) "different seed, different stream" true
    (a <> stream ~seed:43 ());
  (* prefix-stable: each event is a pure function of (seed, index) *)
  let short = stream ~count:80 () in
  Alcotest.(check bool) "count-80 stream is the count-200 prefix" true
    (short = List.filteri (fun i _ -> i < 80) a);
  (* churn invariants: ids are script positions, unregistrations always
     target an earlier position, register events consume shape ordinals
     0,1,2,... so every registration has a distinct canonical query *)
  let next_shape = ref 0 in
  List.iteri
    (fun i ev ->
      match ev with
      | W.Register { id; shape } ->
        Alcotest.(check int) "id is the event index" i id;
        Alcotest.(check int) "shapes consumed in order" !next_shape shape;
        incr next_shape
      | W.Unregister { id } ->
        Alcotest.(check bool) "unregister targets an earlier event" true
          (id >= 0 && id < i))
    a;
  let unregs =
    List.length (List.filter (function W.Unregister _ -> true | _ -> false) a)
  in
  Alcotest.(check bool) "churn 0.25 produces some unregistrations" true
    (unregs > 10 && unregs < 100);
  Alcotest.(check bool) "churn 0 is all registrations" true
    (List.for_all
       (function W.Register _ -> true | W.Unregister _ -> false)
       (stream ~churn:0.0 ()));
  Alcotest.check_raises "churn out of range rejected"
    (Invalid_argument "Workload.registrations_split: churn must be in [0, 1)")
    (fun () -> ignore (stream ~churn:1.0 ()))

(* ------------------------------------------------------------------ *)
(* the acceptance bar: cached-vs-cold differential oracle over 1k cases *)

let oracle_1k name () =
  let oracle =
    List.find (fun (o : Check.Oracles.t) -> o.name = name) Check.Oracles.all
  in
  let stats =
    Check.Runner.run { Check.Runner.default with cases = 1_000; oracles = [ oracle ] }
  in
  Alcotest.(check int) "no discrepancies" 0 (Check.Runner.discrepancy_count stats);
  List.iter
    (fun (_, passes, _, fails) ->
      Alcotest.(check int) "no fails" 0 fails;
      Alcotest.(check bool) "mostly applicable" true (passes >= 900))
    stats.Check.Runner.per_oracle

let test_oracle_1k = oracle_1k "plan-cache"
let test_parallel_oracle_1k = oracle_1k "parallel-batch"
let test_optimizer_oracle_1k = oracle_1k "optimizer-pick"

let suite =
  [
    Alcotest.test_case "fingerprint variants" `Quick test_fingerprint_variants;
    Alcotest.test_case "explain plan-cache line" `Quick test_explain_plan_cache;
    prop_alpha_rename;
    prop_fp_iff_canonical;
    prop_xpath_reassociation;
    Alcotest.test_case "plan cache LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "plan cache TTL expiry" `Quick test_ttl_expiry;
    Alcotest.test_case "plan cache disabled at capacity 0" `Quick test_cache_disabled;
    prop_batch_equals_engine;
    Alcotest.test_case "batch dedup shares answers" `Quick test_batch_dedup_shares;
    Alcotest.test_case "server closed loop stats" `Quick test_server_closed_loop;
    Alcotest.test_case "admission control rejects over bound" `Quick
      test_admission_rejects_over_bound;
    Alcotest.test_case "open loop sheds late requests" `Quick test_open_loop_sheds;
    Alcotest.test_case "workload generator" `Quick test_workload_generator;
    Alcotest.test_case "per-request scoped profiles" `Quick test_per_request_profiles;
    Alcotest.test_case "share-mode per-rep profiles" `Quick
      test_share_mode_profiles_per_rep;
    Alcotest.test_case "degrade logs priced fingerprint" `Quick
      test_degrade_logs_fingerprint;
    Alcotest.test_case "pool basics" `Quick test_pool_basics;
    Alcotest.test_case "pool drains after exception" `Quick
      test_pool_exception_drains;
    Alcotest.test_case "pool size one and shutdown" `Quick
      test_pool_size_one_and_shutdown;
    prop_parallel_batch_equals_sequential;
    Alcotest.test_case "parallel server counters match sequential" `Quick
      test_parallel_server_counters_match;
    Alcotest.test_case "wall-clock smoke" `Quick test_wall_clock_smoke;
    Alcotest.test_case "seed-split request streams replay" `Quick
      test_requests_split_replayable;
    Alcotest.test_case "seed-split registration churn streams" `Quick
      test_registrations_split;
    Alcotest.test_case "plan-cache oracle x1000" `Slow test_oracle_1k;
    Alcotest.test_case "parallel-batch oracle x1000" `Slow
      test_parallel_oracle_1k;
    Alcotest.test_case "optimizer-pick oracle x1000" `Slow
      test_optimizer_oracle_1k;
  ]
