(* Algebraic laws across the relational and logical layers — the equational
   sanity net under the engines. *)
open Treekit
open Helpers
module R = Relkit.Relation
module Ops = Relkit.Ops

let rel_gen =
  QCheck2.Gen.(
    let* arity = int_range 1 3 in
    let* rows =
      list_size (int_range 0 12)
        (list_repeat arity (int_range 0 5))
    in
    return (R.of_rows ~arity (List.map Array.of_list rows)))

let pair_gen = QCheck2.Gen.(pair rel_gen rel_gen)

(* ------------------------------------------------------------------ *)
(* relational algebra *)

let prop_union_laws =
  qtest ~count:200 "union is commutative, associative, idempotent" pair_gen
    (fun (a, b) ->
      QCheck2.assume (R.arity a = R.arity b);
      R.equal (Ops.union a b) (Ops.union b a)
      && R.equal (Ops.union a a) a
      && R.equal (Ops.union (Ops.union a b) a) (Ops.union a b))

let prop_diff_laws =
  qtest ~count:200 "difference laws" pair_gen (fun (a, b) ->
      QCheck2.assume (R.arity a = R.arity b);
      R.equal (Ops.diff a a) (Ops.select (fun _ -> false) a)
      && R.cardinality (Ops.diff a b) + R.cardinality (Ops.semijoin
           ~on:(List.init (R.arity a) (fun i -> (i, i))) a b)
         = R.cardinality a)

let prop_semijoin_is_projection_of_join =
  qtest ~count:200 "semijoin = projection of the equijoin" pair_gen
    (fun (a, b) ->
      let k = min (R.arity a) (R.arity b) in
      QCheck2.assume (k >= 1);
      let on = [ (0, 0) ] in
      ignore k;
      let semi = Ops.semijoin ~on a b in
      let join = Ops.equijoin ~on a b in
      let proj = Ops.project (List.init (R.arity a) Fun.id) join in
      R.equal semi proj)

let prop_select_fusion =
  qtest ~count:200 "select distributes and fuses" rel_gen (fun a ->
      let p row = row.(0) mod 2 = 0 in
      let q row = row.(0) < 4 in
      R.equal (Ops.select p (Ops.select q a)) (Ops.select (fun r -> p r && q r) a)
      && R.equal (Ops.select p (Ops.select q a)) (Ops.select q (Ops.select p a)))

let prop_product_cardinality =
  qtest ~count:100 "product cardinality multiplies" pair_gen (fun (a, b) ->
      R.cardinality (Ops.product a b) = R.cardinality a * R.cardinality b)

(* ------------------------------------------------------------------ *)
(* node sets *)

let set_gen =
  QCheck2.Gen.(
    let* n = int_range 1 40 in
    let* xs = list_size (int_range 0 30) (int_range 0 (n - 1)) in
    let* ys = list_size (int_range 0 30) (int_range 0 (n - 1)) in
    return (n, Nodeset.of_list n xs, Nodeset.of_list n ys))

let prop_nodeset_de_morgan =
  qtest ~count:200 "node set de Morgan and involution" set_gen (fun (_, a, b) ->
      Nodeset.equal
        (Nodeset.complement (Nodeset.union a b))
        (Nodeset.inter (Nodeset.complement a) (Nodeset.complement b))
      && Nodeset.equal (Nodeset.complement (Nodeset.complement a)) a
      && Nodeset.equal (Nodeset.diff a b) (Nodeset.inter a (Nodeset.complement b)))

(* ------------------------------------------------------------------ *)
(* XPath semantic laws *)

let xpath_pair_gen =
  QCheck2.Gen.(
    let* s1 = int_range 0 50_000 in
    let* s2 = int_range 0 50_000 in
    let* tseed = int_range 0 50_000 in
    let* n = int_range 1 20 in
    let mk s = Xpath.Generator.random ~seed:s ~depth:2 ~labels:Generator.labels_abc () in
    return (mk s1, mk s2, random_tree ~seed:tseed ~n ()))

let prop_xpath_union_laws =
  qtest ~count:150 "XPath union is commutative and idempotent (semantically)"
    xpath_pair_gen (fun (p, q, t) ->
      let e x = Xpath.Eval.query t x in
      Nodeset.equal (e (Xpath.Ast.Union (p, q))) (e (Xpath.Ast.Union (q, p)))
      && Nodeset.equal (e (Xpath.Ast.Union (p, p))) (e p))

let prop_xpath_seq_assoc =
  qtest ~count:150 "XPath composition is associative (semantically)"
    QCheck2.Gen.(
      let* s1 = int_range 0 50_000 in
      let* s2 = int_range 0 50_000 in
      let* s3 = int_range 0 50_000 in
      let* tseed = int_range 0 50_000 in
      let* n = int_range 1 20 in
      let mk s = Xpath.Generator.random ~seed:s ~depth:1 ~labels:Generator.labels_abc () in
      return (mk s1, mk s2, mk s3, random_tree ~seed:tseed ~n ()))
    (fun (p, q, r, t) ->
      let e x = Xpath.Eval.query t x in
      Nodeset.equal
        (e (Xpath.Ast.Seq (Xpath.Ast.Seq (p, q), r)))
        (e (Xpath.Ast.Seq (p, Xpath.Ast.Seq (q, r)))))

let prop_xpath_forward_backward_adjoint =
  (* F and B are adjoint: F(p, S) ∩ T ≠ ∅ ⇔ S ∩ B(p, T) ≠ ∅ *)
  qtest ~count:150 "forward/backward adjunction" xpath_pair_gen (fun (p, _, t) ->
      let n = Tree.size t in
      let rng = Random.State.make [| n + Xpath.Ast.size p |] in
      let rand_set () =
        let s = Nodeset.create n in
        for v = 0 to n - 1 do
          if Random.State.bool rng then Nodeset.add s v
        done;
        s
      in
      let s = rand_set () and tt = rand_set () in
      let lhs = not (Nodeset.is_empty (Nodeset.inter (Xpath.Eval.forward t p s) tt)) in
      let rhs = not (Nodeset.is_empty (Nodeset.inter s (Xpath.Eval.backward t p tt))) in
      lhs = rhs)

(* ------------------------------------------------------------------ *)
(* order-theoretic laws on trees *)

let prop_order_trichotomy =
  qtest ~count:100 "pre-order trichotomy: ancestor, following, or converse"
    (tree_gen ~max_n:25 ()) (fun t ->
      let n = Tree.size t in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then begin
            let cases =
              [
                Tree.is_ancestor t u v;
                Tree.is_ancestor t v u;
                Tree.is_following t u v;
                Tree.is_following t v u;
              ]
            in
            if List.length (List.filter Fun.id cases) <> 1 then ok := false
          end
        done
      done;
      !ok)

let suite =
  [
    prop_union_laws;
    prop_diff_laws;
    prop_semijoin_is_projection_of_join;
    prop_select_fusion;
    prop_product_cardinality;
    prop_nodeset_de_morgan;
    prop_xpath_union_laws;
    prop_xpath_seq_assoc;
    prop_xpath_forward_backward_adjoint;
    prop_order_trichotomy;
  ]
