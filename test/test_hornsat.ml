open Helpers

let test_empty () =
  let f = Hornsat.create ~nvars:3 in
  let m = Hornsat.solve f in
  Alcotest.(check bool) "nothing derivable" true (Array.for_all not m);
  Alcotest.(check bool) "satisfiable" true (Hornsat.satisfiable f)

let test_chain () =
  let f = Hornsat.create ~nvars:4 in
  ignore (Hornsat.add_rule f ~head:0 ~body:[]);
  ignore (Hornsat.add_rule f ~head:1 ~body:[ 0 ]);
  ignore (Hornsat.add_rule f ~head:2 ~body:[ 1 ]);
  ignore (Hornsat.add_rule f ~head:3 ~body:[ 2; 0 ]);
  let m = Hornsat.solve f in
  Alcotest.(check bool) "all derived" true (Array.for_all Fun.id m);
  Alcotest.(check (list int)) "derivation order" [ 0; 1; 2; 3 ] (Hornsat.solve_order f)

let test_blocked () =
  let f = Hornsat.create ~nvars:3 in
  ignore (Hornsat.add_rule f ~head:1 ~body:[ 0 ]);
  ignore (Hornsat.add_rule f ~head:2 ~body:[ 1 ]);
  let m = Hornsat.solve f in
  Alcotest.(check bool) "nothing derived without facts" true (Array.for_all not m)

let test_cyclic_rules () =
  (* p ← q, q ← p derives nothing; with a fact everything fires *)
  let f = Hornsat.create ~nvars:2 in
  ignore (Hornsat.add_rule f ~head:0 ~body:[ 1 ]);
  ignore (Hornsat.add_rule f ~head:1 ~body:[ 0 ]);
  Alcotest.(check bool) "cycle underived" true (Array.for_all not (Hornsat.solve f));
  ignore (Hornsat.add_rule f ~head:0 ~body:[]);
  Alcotest.(check bool) "cycle fires with a fact" true (Array.for_all Fun.id (Hornsat.solve f))

let test_goals () =
  let f = Hornsat.create ~nvars:2 in
  ignore (Hornsat.add_rule f ~head:0 ~body:[]);
  Hornsat.add_goal f ~body:[ 0; 1 ];
  Alcotest.(check bool) "goal not violated" true (Hornsat.satisfiable f);
  ignore (Hornsat.add_rule f ~head:1 ~body:[ 0 ]);
  Alcotest.(check bool) "goal violated" false (Hornsat.satisfiable f)

let test_duplicate_body_atoms () =
  (* size counting must tolerate p occurring twice in a body *)
  let f = Hornsat.create ~nvars:2 in
  ignore (Hornsat.add_rule f ~head:0 ~body:[]);
  ignore (Hornsat.add_rule f ~head:1 ~body:[ 0; 0 ]);
  Alcotest.(check bool) "derives through duplicate" true (Hornsat.solve f).(1)

(* Example 3.3: the paper's worked example, including the exact
   initialisation state of Figure 3's data structures. *)
let test_example_33_init_state () =
  let f, _ = Mdatalog.Examples.example_33_formula () in
  let st = Hornsat.init_state f in
  Alcotest.(check (list (pair int int))) "size"
    [ (1, 0); (2, 0); (3, 0); (4, 1); (5, 2); (6, 2) ]
    st.size;
  (* heads are 0-based variables; the paper's variable k is our k-1 *)
  Alcotest.(check (list (pair int int))) "head"
    [ (1, 0); (2, 1); (3, 2); (4, 3); (5, 4); (6, 5) ]
    st.head;
  (* rules[1] = [r4], rules[2] = [r6], rules[3] = [r5], rules[4] = [r5],
     rules[5] = [r6] — 0-based variables *)
  Alcotest.(check (list (pair int (list int)))) "rules"
    [ (0, [ 4 ]); (1, [ 6 ]); (2, [ 5 ]); (3, [ 5 ]); (4, [ 6 ]) ]
    st.rules;
  Alcotest.(check (list int)) "queue = [1, 2, 3]" [ 0; 1; 2 ] st.queue

let test_example_33_run () =
  let f, names = Mdatalog.Examples.example_33_formula () in
  let order = List.map (fun v -> names.(v)) (Hornsat.solve_order f) in
  Alcotest.(check (list string)) "derivation order" [ "1"; "2"; "3"; "4"; "5"; "6" ] order;
  Alcotest.(check bool) "least model is everything" true (Array.for_all Fun.id (Hornsat.solve f))

(* random Horn formulas: Minoux = brute-force fixpoint *)
let horn_gen =
  QCheck2.Gen.(
    let* nvars = int_range 1 12 in
    let* nrules = int_range 0 25 in
    let* rules =
      list_repeat nrules
        (let* head = int_range 0 (nvars - 1) in
         let* body = list_size (int_range 0 4) (int_range 0 (nvars - 1)) in
         return (head, body))
    in
    return (nvars, rules))

let prop_minoux_equals_brute =
  qtest ~count:300 "Minoux = naive fixpoint" horn_gen (fun (nvars, rules) ->
      let f = Hornsat.create ~nvars in
      List.iter (fun (head, body) -> ignore (Hornsat.add_rule f ~head ~body)) rules;
      Hornsat.solve f = Hornsat.solve_brute f)

let prop_order_is_valid_derivation =
  qtest ~count:200 "solve_order is a valid derivation sequence" horn_gen
    (fun (nvars, rules) ->
      let f = Hornsat.create ~nvars in
      List.iter (fun (head, body) -> ignore (Hornsat.add_rule f ~head ~body)) rules;
      let order = Hornsat.solve_order f in
      let model = Hornsat.solve f in
      (* exactly the true variables, each derivable from its prefix *)
      List.length order = Array.fold_left (fun c b -> if b then c + 1 else c) 0 model
      &&
      let derived = Array.make nvars false in
      List.for_all
        (fun p ->
          let justified =
            List.exists
              (fun (head, body) ->
                head = p && List.for_all (fun q -> derived.(q)) body)
              rules
          in
          derived.(p) <- true;
          justified)
        order)

let test_size_measure () =
  let f = Hornsat.create ~nvars:3 in
  ignore (Hornsat.add_rule f ~head:0 ~body:[]);
  ignore (Hornsat.add_rule f ~head:1 ~body:[ 0; 2 ]);
  Hornsat.add_goal f ~body:[ 1 ];
  Alcotest.(check int) "atom occurrences" 5 (Hornsat.size_of_formula f);
  Alcotest.(check int) "rule count" 2 (Hornsat.rule_count f)

let suite =
  [
    Alcotest.test_case "empty formula" `Quick test_empty;
    Alcotest.test_case "chain of rules" `Quick test_chain;
    Alcotest.test_case "no facts, no derivation" `Quick test_blocked;
    Alcotest.test_case "cyclic rules" `Quick test_cyclic_rules;
    Alcotest.test_case "goal clauses" `Quick test_goals;
    Alcotest.test_case "duplicate body atoms" `Quick test_duplicate_body_atoms;
    Alcotest.test_case "Example 3.3: Figure 3 data structures" `Quick test_example_33_init_state;
    Alcotest.test_case "Example 3.3: derivation" `Quick test_example_33_run;
    prop_minoux_equals_brute;
    prop_order_is_valid_derivation;
    Alcotest.test_case "size measure" `Quick test_size_measure;
  ]
