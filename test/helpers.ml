(* Shared fixtures and Alcotest testables. *)
open Treekit

(* The example tree of Figure 2 (a):
     1:7:a ( 2:3:b ( 3:1:a, 4:2:c ), 5:6:a ( 6:4:b, 7:5:d ) ) *)
let fig2_tree () =
  Tree.of_builder
    (Tree.Node
       ( "a",
         [
           Node ("b", [ Node ("a", []); Node ("c", []) ]);
           Node ("a", [ Node ("b", []); Node ("d", []) ]);
         ] ))

(* The tree of Figure 4 (15 nodes, used for the tree-width example). *)
let fig4_tree () =
  Tree.of_builder
    (Tree.Node
       ( "a",
         [
           Node ("a", [ Node ("a", []); Node ("a", []) ]);
           Node
             ( "a",
               [
                 Node ("a", [ Node ("a", []); Node ("a", []) ]);
                 Node ("a", []);
                 Node ("a", []);
               ] );
           Node ("a", [ Node ("a", []) ]);
           Node ("a", [ Node ("a", []); Node ("a", []) ]);
         ] ))

let random_tree ?(labels = Generator.labels_abc) ~seed ~n () =
  Generator.random ~seed ~n ~labels ()

let nodeset : Nodeset.t Alcotest.testable =
  Alcotest.testable Nodeset.pp Nodeset.equal

let sorted_list xs = List.sort compare xs

let tuples : int array list Alcotest.testable =
  let pp fmt ts =
    Format.fprintf fmt "[%s]"
      (String.concat "; "
         (List.map
            (fun t ->
              "(" ^ String.concat "," (List.map string_of_int (Array.to_list t)) ^ ")")
            ts))
  in
  Alcotest.testable pp ( = )

let check_nodeset = Alcotest.check nodeset
let check_tuples = Alcotest.check tuples

(* qcheck → alcotest bridge with a fixed seed for determinism *)
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest ~long:false
    (QCheck2.Test.make ~count ~name gen prop)

(* generator of small random trees, by seed *)
let tree_gen ?(max_n = 30) () =
  QCheck2.Gen.(
    let* seed = int_range 0 10_000 in
    let* n = int_range 1 max_n in
    return (random_tree ~seed ~n ()))
