open Treekit
open Helpers
module A = Automata.Automaton

let example_automata =
  [
    A.exists_label "a";
    A.root_label "a";
    A.all_leaves_labeled "c";
    A.count_label_mod "a" ~modulus:3 ~residue:1;
    A.every_a_has_b_descendant "a" "b";
    A.adjacent_children "a" "b";
  ]

let test_monoid_laws () =
  List.iter
    (fun (auto : A.t) ->
      Alcotest.(check (result unit string)) auto.name (Ok ())
        (A.check_monoid auto ~labels:[ "a"; "b"; "c" ]))
    (A.conj (A.exists_label "a") (A.complement (A.root_label "b")) :: example_automata)

(* ground truth by direct inspection of the tree *)
let direct_semantics t (auto : A.t) =
  let n = Tree.size t in
  let nodes = List.init n Fun.id in
  let count l = List.length (Tree.nodes_with_label t l) in
  match auto.name with
  | "exists-a" -> count "a" > 0
  | "root-a" -> Tree.label t 0 = "a"
  | "all-leaves-c" ->
    List.for_all (fun v -> (not (Tree.is_leaf t v)) || Tree.label t v = "c") nodes
  | "count-a-mod-3" -> count "a" mod 3 = 1
  | "every-a-has-b-descendant" ->
    List.for_all
      (fun v ->
        Tree.label t v <> "a"
        || List.exists (fun w -> Tree.label t w = "b") (Axis.nodes t Axis.Descendant v))
      nodes
  | "adjacent-a-b-children" ->
    List.exists
      (fun v ->
        let s = Tree.next_sibling t v in
        s <> -1 && Tree.label t v = "a" && Tree.label t s = "b")
      nodes
  | other -> Alcotest.fail ("no direct semantics for " ^ other)

let prop_examples_match_direct_semantics =
  qtest ~count:200 "example automata = direct semantics" (tree_gen ~max_n:40 ())
    (fun t -> List.for_all (fun auto -> A.run auto t = direct_semantics t auto) example_automata)

let prop_streaming_equals_in_memory =
  qtest ~count:200 "streaming run = bottom-up run" (tree_gen ~max_n:40 ()) (fun t ->
      List.for_all
        (fun auto -> A.run_events auto (Event.to_seq t) = A.run auto t)
        (A.disj (A.adjacent_children "a" "b") (A.count_label_mod "c" ~modulus:2 ~residue:0)
        :: example_automata))

(* the push-based stepper (used by the subscription index, which owns
   the SAX loop) must agree with the pull-based run_events, and a reset
   stepper must behave like a fresh one *)
let prop_stepper_equals_run =
  qtest ~count:200 "push stepper = bottom-up run (and reset = fresh)"
    (tree_gen ~max_n:40 ()) (fun t ->
      List.for_all
        (fun auto ->
          let s = A.stepper auto in
          Event.iter t (A.step s);
          let first = A.accepted s in
          A.reset_stepper s;
          Event.iter t (A.step s);
          first = Some (A.run auto t) && A.accepted s = first)
        (A.disj (A.adjacent_children "a" "b") (A.count_label_mod "c" ~modulus:2 ~residue:0)
        :: example_automata))

let prop_boolean_combinators =
  qtest ~count:150 "product/complement respect boolean semantics"
    (tree_gen ~max_n:30 ()) (fun t ->
      let a = A.exists_label "a" and b = A.every_a_has_b_descendant "a" "b" in
      A.run (A.conj a b) t = (A.run a t && A.run b t)
      && A.run (A.disj a b) t = (A.run a t || A.run b t)
      && A.run (A.complement a) t = not (A.run a t))

let test_streaming_memory_is_depth () =
  let deep = Generator.path ~n:4_000 () in
  let auto = A.count_label_mod "a" ~modulus:5 ~residue:0 in
  let _, peak = A.run_events_stats auto (Event.to_seq deep) in
  Alcotest.(check int) "peak = depth" 4_000 peak;
  let wide = Generator.star ~n:4_000 () in
  let _, peak_wide = A.run_events_stats auto (Event.to_seq wide) in
  Alcotest.(check int) "star peak" 2 peak_wide

let test_mso_counting_not_fo () =
  (* the modular-counting automaton distinguishes trees that agree on all
     small local patterns — a sanity check that we really are beyond
     label-existence *)
  let t1 = Generator.star ~n:4 () in
  (* 4 a-nodes *)
  let t2 = Generator.star ~n:5 () in
  (* 5 a-nodes *)
  let auto = A.count_label_mod "a" ~modulus:2 ~residue:0 in
  Alcotest.(check bool) "4 is even" true (A.run auto t1);
  Alcotest.(check bool) "5 is odd" false (A.run auto t2)

let prop_select_ancestor =
  qtest ~count:150 "unary two-pass: ancestor query = axis image"
    (tree_gen ~max_n:40 ()) (fun t ->
      List.for_all
        (fun l ->
          Nodeset.equal
            (A.has_ancestor_labeled l t)
            (Axis.image t Axis.Descendant (Tree.label_set t l)))
        [ "a"; "b"; "c" ])

let prop_select_vs_datalog =
  (* the automata-based two-pass technique and monadic datalog compute the
     same unary queries (the [29,51] connection): "ancestors of l-labeled
     nodes" both ways *)
  qtest ~count:100 "two-pass select = monadic datalog" (tree_gen ~max_n:30 ())
    (fun t ->
      let via_datalog = Mdatalog.Eval.run (Mdatalog.Examples.has_ancestor_labeled "b") t in
      (* Example 3.1's program marks the proper ancestors of b-labeled
         nodes; via automata: v qualifies iff some child subtree's
         exists-b state is accepting *)
      let states = A.state_at (A.exists_label "b") t in
      let expected = Nodeset.create (Tree.size t) in
      for v = 0 to Tree.size t - 1 do
        if Tree.fold_children t v (fun acc c -> acc || states.(c) = 1) false then
          Nodeset.add expected v
      done;
      Nodeset.equal via_datalog expected)

let test_product_state_count () =
  let a = A.exists_label "a" and b = A.count_label_mod "b" ~modulus:3 ~residue:0 in
  let p = A.conj a b in
  Alcotest.(check int) "states multiply" 6 p.A.states;
  Alcotest.(check int) "monoid multiplies" 6 p.A.monoid_size

let test_unbalanced_stream_rejected () =
  let auto = A.exists_label "a" in
  let t = fig2_tree () in
  let events = List.of_seq (Event.to_seq t) in
  let truncated = List.filteri (fun i _ -> i < List.length events - 1) events in
  Alcotest.(check bool) "truncated stream rejected" true
    (match A.run_events auto (List.to_seq truncated) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "monoid laws" `Quick test_monoid_laws;
    prop_examples_match_direct_semantics;
    prop_streaming_equals_in_memory;
    prop_stepper_equals_run;
    prop_boolean_combinators;
    Alcotest.test_case "streaming memory = depth" `Quick test_streaming_memory_is_depth;
    Alcotest.test_case "modular counting (MSO, not FO)" `Quick test_mso_counting_not_fo;
    prop_select_ancestor;
    prop_select_vs_datalog;
    Alcotest.test_case "product state counts" `Quick test_product_state_count;
    Alcotest.test_case "unbalanced stream rejected" `Quick test_unbalanced_stream_rejected;
  ]
