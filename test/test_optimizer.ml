(* Adaptive optimizer tests:

   - seeded estimates: the quadratic FO² arm prices itself out of the
     plausible set on non-trivial documents, label selectivity narrows
     label-driven arms;
   - convergence: with deterministic injected per-strategy latencies the
     optimizer converges to the argmin within the exploration budget and
     never regresses after convergence — and the whole routing sequence
     is seed-replayable;
   - pinned picks (the plan cache's persisted state) skip exploration;
   - the [invert] fault forces the worst arm (the attest bad-pick gate);
   - plan-cache pick persistence: picks ride entries, LRU eviction and
     TTL expiry drop them (re-explore on churn), per-entry hit counts
     accumulate alongside;
   - end-to-end: a serve run with --strategy auto semantics converges
     and persists picks; a warm fleet sharing the cache explores zero
     times; a pinned fixed strategy yields the same answers. *)

open Helpers
module Engine = Treequery.Engine

let prepare_xpath s = Engine.prepare (Engine.parse_xpath s)

(* a shape with all four XPath arms: bottom-up, yannakakis (conjunctive,
   acyclic), datalog-hornsat and FO² *)
let multi_arm = "//a[b and c]"

(* ------------------------------------------------------------------ *)
(* seeding *)

let test_estimates_price_out_fo2 () =
  let tree = random_tree ~seed:3 ~n:2_000 () in
  let stats = Optimizer.Stats.of_tree tree in
  let q = Engine.parse_xpath multi_arm in
  let by_strategy =
    List.map
      (fun s ->
        let p = Engine.prepare_with s q in
        (Engine.strategy_name s, Optimizer.estimate stats p))
      (Engine.strategies q)
  in
  let fo2 = List.assoc "xpath-fo2" by_strategy in
  List.iter
    (fun (name, est) ->
      if name <> "xpath-fo2" then
        Alcotest.(check bool)
          (Printf.sprintf "fo2 dwarfs %s" name)
          true
          (fo2 > 100.0 *. est))
    by_strategy;
  (* and the decision engine marks it implausible: one decide, then the
     report shows the fo2 arm as not explorable *)
  let opt = Optimizer.create ~epsilon:0.0 ~seed:0 () in
  ignore (Optimizer.decide opt tree (Engine.prepare q));
  let r = List.hd (Optimizer.report opt) in
  let fo2_arm =
    List.find
      (fun (a : Optimizer.arm_report) -> a.r_strategy = "xpath-fo2")
      r.Optimizer.r_arms
  in
  Alcotest.(check bool) "fo2 not explorable" false fo2_arm.Optimizer.r_explorable

let test_selectivity_narrows () =
  let tree = random_tree ~seed:3 ~n:1_000 () in
  let stats = Optimizer.Stats.of_tree tree in
  let common = Engine.parse_xpath "//a" in
  let absent = Engine.parse_xpath "//zz" in
  let s_common = Optimizer.selectivity stats common in
  let s_absent = Optimizer.selectivity stats absent in
  Alcotest.(check bool) "common label is likelier" true (s_common > s_absent);
  Alcotest.(check bool) "absent label clamped above zero" true (s_absent > 0.0)

(* ------------------------------------------------------------------ *)
(* convergence *)

(* deterministic injected latencies: hornsat fastest, so the argmin is
   known; cost mirrors latency so persisted picks are deterministic too *)
let injected_latency = function
  | "datalog-hornsat" -> 0.001
  | "yannakakis" -> 0.003
  | "xpath-bottom-up" -> 0.005
  | _ -> 0.050

let drive ?(rounds = 40) ~seed () =
  let tree = random_tree ~seed:11 ~n:300 () in
  let default = prepare_xpath multi_arm in
  let opt = Optimizer.create ~epsilon:0.0 ~min_trials:2 ~seed () in
  let picks = ref [] and converged_at = ref None in
  for i = 1 to rounds do
    let d = Optimizer.decide opt tree default in
    let name = Engine.strategy_name d.Optimizer.d_strategy in
    picks := name :: !picks;
    let l = injected_latency name in
    match
      Optimizer.observe opt ~canon:default.Engine.canon ~strategy:name
        ~latency:l ~cost:(l *. 5e7)
    with
    | Some _ when !converged_at = None -> converged_at := Some i
    | _ -> ()
  done;
  (List.rev !picks, !converged_at)

let test_converges_to_argmin_and_never_regresses () =
  let picks, converged_at = drive ~seed:1 () in
  let k =
    match converged_at with
    | Some k -> k
    | None -> Alcotest.fail "never converged"
  in
  (* the exploration budget: |plausible arms| * min_trials; FO² is
     implausible, leaving three arms at two trials each *)
  Alcotest.(check bool) "converged within budget" true (k <= 6);
  let after = List.filteri (fun i _ -> i >= k) picks in
  Alcotest.(check bool) "decisions exist after convergence" true (after <> []);
  List.iter
    (fun name ->
      Alcotest.(check string) "argmin after convergence, never regresses"
        "datalog-hornsat" name)
    after

let test_routing_is_seed_replayable () =
  let a, ka = drive ~seed:9 () in
  let b, kb = drive ~seed:9 () in
  Alcotest.(check bool) "same seed, same routing sequence" true (a = b);
  Alcotest.(check bool) "same convergence point" true (ka = kb);
  (* epsilon-greedy draws are part of the replayable state too *)
  let noisy seed =
    let tree = random_tree ~seed:11 ~n:300 () in
    let default = prepare_xpath multi_arm in
    let opt = Optimizer.create ~epsilon:0.5 ~min_trials:2 ~seed () in
    List.init 12 (fun _ ->
        let d = Optimizer.decide opt tree default in
        let name = Engine.strategy_name d.Optimizer.d_strategy in
        let l = injected_latency name in
        ignore
          (Optimizer.observe opt ~canon:default.Engine.canon ~strategy:name
             ~latency:l ~cost:l);
        name)
  in
  Alcotest.(check bool) "epsilon draws replay under the seed" true
    (noisy 4 = noisy 4)

let test_pinned_pick_skips_exploration () =
  let tree = random_tree ~seed:11 ~n:300 () in
  let default = prepare_xpath multi_arm in
  let opt = Optimizer.create ~epsilon:0.0 ~seed:0 () in
  let d = Optimizer.decide opt ~pinned:"datalog-hornsat" tree default in
  Alcotest.(check string) "pinned arm picked" "datalog-hornsat"
    (Engine.strategy_name d.Optimizer.d_strategy);
  Alcotest.(check bool) "reason is the cached pick" true
    (d.Optimizer.d_reason = Optimizer.Cached_pick);
  let s = Optimizer.stats opt in
  Alcotest.(check int) "no exploration" 0 s.Optimizer.explorations;
  Alcotest.(check int) "entry converged immediately" 1 s.Optimizer.converged

let test_invert_forces_worst_arm () =
  let tree = random_tree ~seed:11 ~n:300 () in
  let default = prepare_xpath multi_arm in
  let opt = Optimizer.create ~epsilon:0.0 ~invert:true ~seed:0 () in
  let d = Optimizer.decide opt tree default in
  Alcotest.(check string) "worst arm is the quadratic FO2 embedding"
    "xpath-fo2"
    (Engine.strategy_name d.Optimizer.d_strategy);
  Alcotest.(check bool) "reason says injected" true
    (d.Optimizer.d_reason = Optimizer.Injected_worst)

let test_create_validates () =
  let bad f = Alcotest.check_raises "invalid_arg" (Invalid_argument f) in
  bad "Optimizer.create: epsilon must be in [0, 1]" (fun () ->
      ignore (Optimizer.create ~epsilon:1.5 ()));
  bad "Optimizer.create: min_trials must be >= 1" (fun () ->
      ignore (Optimizer.create ~min_trials:0 ()));
  bad "Optimizer.create: explore_span must be >= 1" (fun () ->
      ignore (Optimizer.create ~explore_span:0.5 ()))

(* ------------------------------------------------------------------ *)
(* plan-cache pick persistence *)

let test_cache_pick_rides_entry () =
  let cache = Serve.Plan_cache.create ~capacity:8 () in
  let q = Engine.parse_xpath multi_arm in
  let _, p = Serve.Plan_cache.find cache q in
  let canon = p.Engine.canon in
  Alcotest.(check bool) "no pick on a fresh entry" true
    (Serve.Plan_cache.pick cache ~canon = None);
  Serve.Plan_cache.set_pick cache ~canon ~strategy:"yannakakis" ~cost:42.0;
  (match Serve.Plan_cache.pick cache ~canon with
  | Some pk ->
    Alcotest.(check string) "strategy" "yannakakis" pk.Serve.Plan_cache.pick_strategy;
    Alcotest.(check (float 1e-9)) "cost" 42.0 pk.Serve.Plan_cache.pick_cost
  | None -> Alcotest.fail "pick not stored");
  (* hits accumulate on the same entry without disturbing the pick *)
  ignore (Serve.Plan_cache.find cache q);
  ignore (Serve.Plan_cache.find cache q);
  let e = List.hd (Serve.Plan_cache.entries cache) in
  Alcotest.(check int) "per-entry hits counted" 2 e.Serve.Plan_cache.entry_hits;
  Alcotest.(check bool) "pick survives hits" true
    (e.Serve.Plan_cache.entry_pick <> None)

let test_cache_eviction_drops_pick () =
  let cache = Serve.Plan_cache.create ~capacity:2 () in
  let q1 = Engine.parse_xpath "//a" in
  let _, p1 = Serve.Plan_cache.find cache q1 in
  Serve.Plan_cache.set_pick cache ~canon:p1.Engine.canon
    ~strategy:"datalog-hornsat" ~cost:1.0;
  (* fill past capacity: q1 is the LRU victim *)
  ignore (Serve.Plan_cache.find cache (Engine.parse_xpath "//b"));
  ignore (Serve.Plan_cache.find cache (Engine.parse_xpath "//c"));
  Alcotest.(check bool) "evicted entry has no pick" true
    (Serve.Plan_cache.pick cache ~canon:p1.Engine.canon = None);
  (* a re-planned shape starts cold: fresh entry, no pick — the
     serving layer re-explores *)
  let outcome, p1' = Serve.Plan_cache.find cache q1 in
  Alcotest.(check bool) "re-lookup is a miss" true (outcome = `Miss);
  Alcotest.(check bool) "fresh entry, no stored pick" true
    (Serve.Plan_cache.pick cache ~canon:p1'.Engine.canon = None)

let test_cache_ttl_resets_pick () =
  let now = ref 0.0 in
  let cache =
    Serve.Plan_cache.create ~capacity:8 ~ttl:10.0 ~clock:(fun () -> !now) ()
  in
  let q = Engine.parse_xpath multi_arm in
  let _, p = Serve.Plan_cache.find cache q in
  let canon = p.Engine.canon in
  Serve.Plan_cache.set_pick cache ~canon ~strategy:"yannakakis" ~cost:7.0;
  now := 5.0;
  Alcotest.(check bool) "pick live within ttl" true
    (Serve.Plan_cache.pick cache ~canon <> None);
  now := 11.0;
  Alcotest.(check bool) "ttl expiry resets the pick" true
    (Serve.Plan_cache.pick cache ~canon = None);
  (* set_pick on an expired entry is a no-op, not a resurrection *)
  Serve.Plan_cache.set_pick cache ~canon ~strategy:"yannakakis" ~cost:7.0;
  Alcotest.(check bool) "no write-through on expired entries" true
    (Serve.Plan_cache.pick cache ~canon = None)

(* ------------------------------------------------------------------ *)
(* end-to-end through the server *)

let serve_workload ~seed ~count =
  let rng = Random.State.make [| seed; 0xda7a |] in
  let shapes = Serve.Workload.shapes ~rng ~count:4 in
  let reqs =
    Serve.Workload.requests ~rng ~shapes:(Array.length shapes) ~count
      Serve.Workload.Closed_loop
  in
  (shapes, reqs)

let test_server_auto_converges_and_persists () =
  let tree = random_tree ~seed:7 ~n:400 () in
  let shapes, reqs = serve_workload ~seed:7 ~count:120 in
  let cache = Serve.Plan_cache.create () in
  let store = Telemetry.Cost_store.create () in
  let opt = Optimizer.create ~epsilon:0.0 ~seed:0 ~store () in
  let cfg = Serve.Server.config ~cache ~telemetry:store ~optimizer:opt () in
  let stats = Serve.Server.run cfg tree shapes reqs in
  Alcotest.(check int) "all served" 120 stats.Serve.Server.served;
  let os = Optimizer.stats opt in
  Alcotest.(check bool) "every shape converged" true
    (os.Optimizer.entries > 0 && os.Optimizer.converged = os.Optimizer.entries);
  let with_picks =
    List.filter
      (fun (e : Serve.Plan_cache.entry_stats) ->
        e.Serve.Plan_cache.entry_pick <> None)
      (Serve.Plan_cache.entries cache)
  in
  Alcotest.(check int) "every cache entry carries the converged pick"
    (List.length (Serve.Plan_cache.entries cache))
    (List.length with_picks);
  (* the cost store counted the routing decisions *)
  let picks_total =
    List.fold_left
      (fun acc (s : Telemetry.Cost_store.summary) -> acc + s.Telemetry.Cost_store.picks)
      0
      (Telemetry.Cost_store.summaries store)
  in
  Alcotest.(check int) "one pick counter bump per request" 120 picks_total;
  (* warm fleet: a fresh optimizer sharing the cache trusts the stored
     picks and never explores *)
  let store2 = Telemetry.Cost_store.create () in
  let opt2 = Optimizer.create ~epsilon:0.0 ~seed:0 ~store:store2 () in
  let cfg2 =
    Serve.Server.config ~cache ~telemetry:store2 ~optimizer:opt2 ()
  in
  let _, reqs2 = serve_workload ~seed:7 ~count:60 in
  let stats2 = Serve.Server.run cfg2 tree shapes reqs2 in
  Alcotest.(check int) "warm run serves" 60 stats2.Serve.Server.served;
  Alcotest.(check int) "warm fleet skips exploration entirely" 0
    (Optimizer.stats opt2).Optimizer.explorations

let test_server_forced_strategy_matches_default () =
  let tree = random_tree ~seed:13 ~n:300 () in
  let shapes, reqs = serve_workload ~seed:13 ~count:60 in
  let run cfg =
    let s = Serve.Server.run cfg tree shapes reqs in
    (s.Serve.Server.served, s.Serve.Server.result_nodes)
  in
  let base = run (Serve.Server.config ()) in
  let forced =
    run (Serve.Server.config ~force_strategy:Engine.Datalog_hornsat ())
  in
  Alcotest.(check (pair int int)) "pinned strategy, same answers" base forced

let suite =
  [
    Alcotest.test_case "estimates price out the FO2 arm" `Quick
      test_estimates_price_out_fo2;
    Alcotest.test_case "label selectivity narrows estimates" `Quick
      test_selectivity_narrows;
    Alcotest.test_case "converges to argmin, never regresses" `Quick
      test_converges_to_argmin_and_never_regresses;
    Alcotest.test_case "routing is seed-replayable" `Quick
      test_routing_is_seed_replayable;
    Alcotest.test_case "pinned pick skips exploration" `Quick
      test_pinned_pick_skips_exploration;
    Alcotest.test_case "invert forces the worst arm" `Quick
      test_invert_forces_worst_arm;
    Alcotest.test_case "create validates parameters" `Quick test_create_validates;
    Alcotest.test_case "plan-cache pick rides the entry" `Quick
      test_cache_pick_rides_entry;
    Alcotest.test_case "eviction drops the pick (re-explore)" `Quick
      test_cache_eviction_drops_pick;
    Alcotest.test_case "ttl expiry resets the pick" `Quick
      test_cache_ttl_resets_pick;
    Alcotest.test_case "server auto converges and persists picks" `Quick
      test_server_auto_converges_and_persists;
    Alcotest.test_case "forced strategy serves identical answers" `Quick
      test_server_forced_strategy_matches_default;
  ]
