open Helpers
module R = Relkit.Relation
module Ops = Relkit.Ops
module SJ = Relkit.Structural_join

let rel rows = R.of_rows ~arity:(match rows with [] -> 0 | r :: _ -> Array.length r) rows

let test_relation_basics () =
  let r = R.create ~name:"t" ~arity:2 () in
  R.add r [| 1; 2 |];
  R.add r [| 1; 2 |];
  R.add r [| 3; 4 |];
  Alcotest.(check int) "dedup" 2 (R.cardinality r);
  Alcotest.(check bool) "mem" true (R.mem r [| 3; 4 |]);
  Alcotest.(check bool) "not mem" false (R.mem r [| 4; 3 |]);
  Alcotest.(check (list int)) "column values" [ 1; 3 ] (R.column_values r 0);
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Relation.add: arity mismatch")
    (fun () -> R.add r [| 1 |])

let test_select_project () =
  let r = rel [ [| 1; 10 |]; [| 2; 20 |]; [| 3; 30 |] ] in
  let s = Ops.select (fun row -> row.(0) > 1) r in
  Alcotest.(check int) "select" 2 (R.cardinality s);
  let p = Ops.project [ 1 ] r in
  Alcotest.(check bool) "project rows" true (R.rows_sorted p = [ [| 10 |]; [| 20 |]; [| 30 |] ]);
  let pp = Ops.project [ 1; 0 ] r in
  Alcotest.(check bool) "project reorder" true (R.mem pp [| 10; 1 |])

let test_joins_agree () =
  let a = rel [ [| 1; 2 |]; [| 2; 3 |]; [| 5; 6 |] ] in
  let b = rel [ [| 2; 9 |]; [| 3; 9 |]; [| 7; 7 |] ] in
  let hash = Ops.equijoin ~on:[ (1, 0) ] a b in
  let theta = Ops.theta_join (fun ra rb -> ra.(1) = rb.(0)) a b in
  Alcotest.(check bool) "hash join = theta join" true (R.equal hash theta);
  Alcotest.(check int) "join size" 2 (R.cardinality hash);
  let semi = Ops.semijoin ~on:[ (1, 0) ] a b in
  Alcotest.(check bool) "semijoin = project of join" true
    (R.equal semi (Ops.select (fun row -> row.(1) = 2 || row.(1) = 3) a))

let test_union_diff_product () =
  let a = rel [ [| 1 |]; [| 2 |] ] and b = rel [ [| 2 |]; [| 3 |] ] in
  Alcotest.(check int) "union" 3 (R.cardinality (Ops.union a b));
  Alcotest.(check bool) "diff" true (R.rows_sorted (Ops.diff a b) = [ [| 1 |] ]);
  Alcotest.(check int) "product" 4 (R.cardinality (Ops.product a b))

(* Example 2.1: the SQL views over the XASR *)
let test_example_21_views () =
  let t = fig2_tree () in
  let xasr = SJ.store t in
  let desc = SJ.descendant_view xasr in
  Alcotest.(check bool) "descendant view = Child+" true
    (R.equal desc (SJ.descendant_pairs t));
  let child = SJ.child_view xasr in
  Alcotest.(check bool) "child view = Child" true (R.equal child (SJ.child_rel t));
  (* the figure's tree has 6 child pairs and 10 descendant pairs *)
  Alcotest.(check int) "child pairs" 6 (R.cardinality child);
  Alcotest.(check int) "descendant pairs" 10 (R.cardinality desc)

let prop_views_on_random_trees =
  qtest ~count:40 "structural views = ground truth" (tree_gen ~max_n:25 ()) (fun t ->
      let xasr = SJ.store t in
      R.equal (SJ.descendant_view xasr) (SJ.descendant_pairs t)
      && R.equal (SJ.child_view xasr) (SJ.child_rel t))

let prop_iterated_join_equals_view =
  qtest ~count:30 "iterated Child join = structural view" (tree_gen ~max_n:20 ())
    (fun t -> R.equal (SJ.iterated_child_join t) (SJ.descendant_pairs t))

let prop_stack_join =
  qtest ~count:50 "stack join = filtered theta join" (tree_gen ~max_n:30 ()) (fun t ->
      let module Tree = Treekit.Tree in
      let n = Tree.size t in
      let rng = Random.State.make [| n * 31 |] in
      let pickset () =
        List.filter (fun _ -> Random.State.bool rng) (List.init n Fun.id)
      in
      let anc = pickset () and desc = pickset () in
      let got = SJ.stack_join t ~ancestors:anc ~descendants:desc in
      let want =
        List.concat_map
          (fun u ->
            List.filter_map
              (fun v -> if Tree.is_ancestor t u v then Some (u, v) else None)
              desc)
          anc
      in
      List.sort compare got = List.sort compare want)

let test_stack_join_orders () =
  let t = fig2_tree () in
  let all = List.init 7 Fun.id in
  let pairs = SJ.stack_join t ~ancestors:all ~descendants:all in
  Alcotest.(check int) "all descendant pairs" 10 (List.length pairs);
  Alcotest.(check bool) "no self pairs" true (List.for_all (fun (u, v) -> u <> v) pairs)

let suite =
  [
    Alcotest.test_case "relation basics" `Quick test_relation_basics;
    Alcotest.test_case "select/project" `Quick test_select_project;
    Alcotest.test_case "hash join = theta join" `Quick test_joins_agree;
    Alcotest.test_case "union/diff/product" `Quick test_union_diff_product;
    Alcotest.test_case "Example 2.1 views" `Quick test_example_21_views;
    prop_views_on_random_trees;
    prop_iterated_join_equals_view;
    prop_stack_join;
    Alcotest.test_case "stack join on fig2" `Quick test_stack_join_orders;
  ]
