open Treekit
open Helpers
module X = Xpath

let parse = X.Parser.parse

(* ------------------------------------------------------------------ *)
(* parser *)

let test_parse_shapes () =
  let p = parse "/a/b" in
  Alcotest.(check string) "steps" "child::*[lab() = \"a\"]/child::*[lab() = \"b\"]"
    (X.Ast.to_string p);
  let p2 = parse "//a" in
  Alcotest.(check string) "descendant sugar"
    "descendant-or-self::*/child::*[lab() = \"a\"]" (X.Ast.to_string p2);
  let p3 = parse "a | b" in
  (match p3 with
  | X.Ast.Union _ -> ()
  | _ -> Alcotest.fail "expected union");
  let p4 = parse "ancestor::a[lab() = 'x' or not(b)]" in
  Alcotest.(check bool) "not conjunctive" true (not (X.Ast.is_conjunctive p4));
  Alcotest.(check bool) "not positive" true (not (X.Ast.is_positive p4));
  Alcotest.(check bool) "not forward" true (not (X.Ast.is_forward p4));
  let p5 = parse "descendant::a[child::b]" in
  Alcotest.(check bool) "conjunctive" true (X.Ast.is_conjunctive p5);
  Alcotest.(check bool) "forward" true (X.Ast.is_forward p5)

let test_parse_errors () =
  let bad s = match parse s with exception Parse_error.Error _ -> true | _ -> false in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "bad axis" true (bad "sideways::a");
  Alcotest.(check bool) "unclosed qualifier" true (bad "a[b");
  Alcotest.(check bool) "trailing garbage" true (bad "a]")

(* failure modes carry the exact offset of the offending token, so a front
   end can point at it (satellite of the differential-oracle PR) *)
let test_parse_error_offsets () =
  let offset_of s =
    match parse s with
    | exception Parse_error.Error { pos; _ } -> pos
    | _ -> Alcotest.failf "%S: expected a parse error" s
  in
  let check_off what s expected = Alcotest.(check int) (what ^ ": " ^ s) expected (offset_of s) in
  (* malformed axis names: the offset is the axis name itself *)
  check_off "unknown axis" "sideways::a" 0;
  check_off "unknown axis mid-path" "a/b/sideways::c" 4;
  check_off "unknown axis in qualifier" "a[foo::b]" 2;
  (* unbalanced predicates: the offset is where the ']' was expected *)
  check_off "unclosed qualifier" "a[b" 3;
  check_off "unclosed nested qualifier" "a[b[c]" 6;
  check_off "stray close" "a]" 1;
  (* empty steps *)
  check_off "empty input" "" 0;
  check_off "empty step after /" "a/" 2;
  check_off "empty step between slashes" "a//" 3;
  check_off "empty step after axis" "child::" 7;
  check_off "empty qualifier" "a[]" 2;
  (* string literals *)
  check_off "missing literal" "a[lab() = ]" 10;
  check_off "unterminated literal" "a[lab() = \"x" 12;
  (* messages render with the offset via Parse_error.to_string *)
  (match parse "sideways::a" with
  | exception Parse_error.Error { pos; msg } ->
    Alcotest.(check string) "rendered message" "at offset 0: unknown axis sideways"
      (Parse_error.to_string ~pos ~msg)
  | _ -> Alcotest.fail "expected a parse error")

let prop_roundtrip =
  (* string-level: Seq/Union are associative and the printer flattens them,
     so AST equality is too strict; parse∘print must be the identity on
     printed form and preserve semantics (the engines property below
     covers semantics) *)
  qtest ~count:200 "print/parse roundtrip"
    QCheck2.Gen.(
      let* seed = int_range 0 100_000 in
      let* depth = int_range 0 4 in
      return (X.Generator.random ~seed ~depth ~labels:Generator.labels_abc ()))
    (fun p ->
      let s = X.Ast.to_string p in
      let p2 = parse s in
      X.Ast.to_string p2 = s)

(* ------------------------------------------------------------------ *)
(* semantics *)

let test_semantics_fig2 () =
  let t = fig2_tree () in
  let q s = X.Eval.query t (parse s) in
  check_nodeset "/a/b" (Nodeset.of_list 7 [ 1 ]) (q "b");
  check_nodeset "//b" (Nodeset.of_list 7 [ 1; 5 ]) (q "//b");
  check_nodeset "//a" (Nodeset.of_list 7 [ 2; 4 ]) (q "//a");
  check_nodeset "//b/following-sibling::*" (Nodeset.of_list 7 [ 4; 6 ])
    (q "//b/following-sibling::*");
  check_nodeset "//a[not(child::*)]" (Nodeset.of_list 7 [ 2 ]) (q "//a[not(child::*)]");
  check_nodeset "leaves via following" (Nodeset.of_list 7 [ 3; 4; 5; 6 ])
    (q "//a[lab() = \"a\"]/following::*");
  check_nodeset "parent" (Nodeset.of_list 7 [ 1; 4 ]) (q "//*[not(child::*)]/parent::*");
  check_nodeset "union" (Nodeset.of_list 7 [ 1; 5; 6 ]) (q "//b | //d")

let test_self_axis () =
  let t = fig2_tree () in
  check_nodeset "self on root" (Nodeset.of_list 7 [ 0 ])
    (X.Eval.query t (parse "self::a"));
  check_nodeset "self mismatch" (Nodeset.create 7) (X.Eval.query t (parse "self::b"))

let engines_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let* tseed = int_range 0 100_000 in
    let* depth = int_range 0 4 in
    let* n = int_range 1 25 in
    return
      ( X.Generator.random ~seed ~depth ~labels:Generator.labels_abc (),
        random_tree ~seed:tseed ~n () ))

let prop_eval_equals_semantics =
  qtest ~count:250 "bottom-up evaluator = literal semantics" engines_gen
    (fun (p, t) -> Nodeset.equal (X.Eval.query t p) (X.Semantics.query t p))

let prop_datalog_equals_semantics =
  qtest ~count:200 "datalog translation = literal semantics" engines_gen
    (fun (p, t) ->
      Nodeset.equal (X.To_datalog.eval_via_datalog t p) (X.Semantics.query t p))

let prop_tmnf_datalog_equals_semantics =
  qtest ~count:150 "TMNF datalog = literal semantics" engines_gen (fun (p, t) ->
      Nodeset.equal (X.To_datalog.eval_via_datalog ~tmnf:true t p) (X.Semantics.query t p))

let prop_backward_is_inverse_image =
  qtest ~count:150 "backward = preimage of forward" engines_gen (fun (p, t) ->
      let n = Tree.size t in
      let rng = Random.State.make [| n + X.Ast.size p |] in
      let s = Nodeset.create n in
      for v = 0 to n - 1 do
        if Random.State.bool rng then Nodeset.add s v
      done;
      let b = X.Eval.backward t p s in
      (* b = { m : [[p]](m) ∩ s ≠ ∅ } *)
      let expected = Nodeset.create n in
      for m = 0 to n - 1 do
        if not (Nodeset.is_empty (Nodeset.inter (X.Semantics.node_set t p m) s)) then
          Nodeset.add expected m
      done;
      Nodeset.equal b expected)

(* ------------------------------------------------------------------ *)
(* translations *)

let conjunctive_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let* tseed = int_range 0 100_000 in
    let* depth = int_range 0 4 in
    let* n = int_range 1 25 in
    return
      ( X.Generator.random ~seed ~depth ~labels:Generator.labels_abc
          ~allow_negation:false ~allow_union:false (),
        random_tree ~seed:tseed ~n () ))

let prop_to_cq =
  qtest ~count:200 "conjunctive XPath → CQ → Yannakakis = evaluator"
    conjunctive_gen (fun (p, t) ->
      match X.To_cq.to_query p with
      | None -> QCheck2.assume_fail ()
      | Some cq ->
        Cqtree.Join_tree.is_acyclic cq
        && Nodeset.equal (Cqtree.Yannakakis.unary cq t) (X.Eval.query t p))

let prop_to_cq_rejects =
  qtest ~count:100 "to_cq rejects exactly non-conjunctive queries" engines_gen
    (fun (p, _) -> X.Ast.is_conjunctive p = (X.To_cq.to_query p <> None))

let prop_of_cq_forward =
  qtest ~count:200 "Theorem 5.1 output → forward XPath = original query"
    QCheck2.Gen.(
      let* qseed = int_range 0 100_000 in
      let* tseed = int_range 0 100_000 in
      let* n = int_range 1 18 in
      let q =
        Cqtree.Generator.arbitrary ~seed:qseed ~nvars:3 ~natoms:3
          ~axes:
            [
              Axis.Child; Axis.Descendant; Axis.Next_sibling;
              Axis.Following_sibling; Axis.Following;
            ]
          ~labels:Generator.labels_abc ()
      in
      return (q, random_tree ~seed:tseed ~n ()))
    (fun (q, t) ->
      let { Cqtree.Rewrite.queries; _ } = Cqtree.Rewrite.rewrite q in
      let answer = Nodeset.create (Tree.size t) in
      let all_supported =
        List.for_all
          (fun q' ->
            match X.Of_cq.forward_xpath q' with
            | None -> false
            | Some p ->
              Alcotest.(check bool)
                ("forward: " ^ X.Ast.to_string p)
                true (X.Ast.is_forward p);
              Nodeset.union_into answer (X.Eval.query t p);
              true)
          queries
      in
      all_supported && Nodeset.equal answer (Cqtree.Naive.unary q t))

let prop_forward_rewrite =
  qtest ~count:200 "reverse-axis elimination preserves semantics (Forward)"
    conjunctive_gen (fun (p, t) ->
      match X.Forward.rewrite p with
      | None -> QCheck2.assume_fail ()
      | Some fwd ->
        X.Ast.is_forward fwd
        && Nodeset.equal (X.Eval.query t fwd) (X.Eval.query t p))

let test_forward_examples () =
  let t = fig2_tree () in
  (* leaves' parents, expressed with a reverse axis *)
  let p = parse "//*[not(child::*)]/parent::*" in
  (* not conjunctive (negation) -> not rewritable *)
  Alcotest.(check bool) "negation rejected" true (X.Forward.rewrite p = None);
  let p2 = parse "//d/parent::*" in
  (match X.Forward.rewrite_and_check p2 with
  | Some (fwd, branches) ->
    Alcotest.(check bool) "forward" true (X.Ast.is_forward fwd);
    Alcotest.(check bool) "at least one branch" true (branches >= 1);
    check_nodeset "same answer" (X.Eval.query t p2) (X.Eval.query t fwd)
  | None -> Alcotest.fail "expected a rewriting");
  (* an already-forward query passes through unchanged *)
  let p3 = parse "//a/b" in
  Alcotest.(check bool) "identity on forward queries" true
    (X.Forward.rewrite p3 = Some p3)

let test_program_size_linear () =
  let size depth =
    match X.To_datalog.to_program (X.Generator.nested_qualifier ~depth ~label:"a") with
    | Ok p -> X.To_datalog.program_size p
    | Error m -> Alcotest.fail m
  in
  let s5 = size 5 and s10 = size 10 and s20 = size 20 in
  Alcotest.(check bool) "linear in |Q|" true
    (s10 - s5 > 0 && s20 - s10 > 0 && (s20 - s10) < 3 * (s10 - s5))

let test_to_program_rejects_negation () =
  Alcotest.(check bool) "negation rejected" true
    (Result.is_error (X.To_datalog.to_program (parse "a[not(b)]")))

let suite =
  [
    Alcotest.test_case "parse shapes" `Quick test_parse_shapes;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse error offsets" `Quick test_parse_error_offsets;
    prop_roundtrip;
    Alcotest.test_case "semantics on fig2" `Quick test_semantics_fig2;
    Alcotest.test_case "self axis" `Quick test_self_axis;
    prop_eval_equals_semantics;
    prop_datalog_equals_semantics;
    prop_tmnf_datalog_equals_semantics;
    prop_backward_is_inverse_image;
    prop_to_cq;
    prop_to_cq_rejects;
    prop_of_cq_forward;
    prop_forward_rewrite;
    Alcotest.test_case "Forward rewriting examples" `Quick test_forward_examples;
    Alcotest.test_case "datalog program size linear" `Quick test_program_size_linear;
    Alcotest.test_case "to_program rejects negation" `Quick test_to_program_rejects_negation;
  ]
