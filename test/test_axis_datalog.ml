open Treekit
open Helpers
module AD = Mdatalog.Axis_datalog

let test_parse_and_check () =
  let p =
    AD.parse
      {| reach(X) :- root(X).
         reach(Y) :- reach(X), child(X, Y), lab(Y, "a").
         ?- reach. |}
  in
  Alcotest.(check int) "rules" 2 (List.length p.rules);
  Alcotest.(check string) "query" "reach" p.query;
  Alcotest.(check bool) "well-formed" true (AD.check p = Ok ());
  let cyclic =
    AD.parse {| p(X) :- child(X, Y), child(Y, Z), descendant(X, Z). ?- p. |}
  in
  Alcotest.(check bool) "cyclic body rejected" true (Result.is_error (AD.check cyclic));
  Alcotest.(check bool) "missing query rule" true
    (Result.is_error (AD.check (AD.parse {| p(X) :- root(X). ?- q. |})))

let test_transitive_axes_without_recursion () =
  let t = fig2_tree () in
  (* Example 3.1 as a single non-recursive rule over Child+ *)
  let p = AD.parse {| anc(X) :- descendant(X, Y), lab(Y, "b"). ?- anc. |} in
  check_nodeset "ancestors of b" (Nodeset.of_list 7 [ 0; 4 ]) (AD.run p t)

let test_recursive_reachability () =
  let t = fig2_tree () in
  (* even-depth nodes via mutual recursion over child *)
  let p =
    AD.parse
      {| even(X) :- root(X).
         odd(Y) :- even(X), child(X, Y).
         even(Y) :- odd(X), child(X, Y).
         ?- even. |}
  in
  check_nodeset "even depth" (Nodeset.of_list 7 [ 0; 2; 3; 5; 6 ]) (AD.run p t)

let test_example_31_embedding () =
  let t = fig2_tree () in
  let tau = Mdatalog.Examples.has_ancestor_labeled "b" in
  let embedded = AD.of_tau_program tau in
  Alcotest.(check bool) "embedding well-formed" true (AD.check embedded = Ok ());
  check_nodeset "same answers as the tau+ engine" (Mdatalog.Eval.run tau t)
    (AD.run embedded t)

let random_axis_program seed =
  let rng = Random.State.make [| seed |] in
  let preds = [| "p"; "q" |] in
  let axes =
    [| Axis.Child; Axis.Descendant; Axis.Next_sibling; Axis.Following_sibling;
       Axis.Parent; Axis.Ancestor |]
  in
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  let rule head =
    match Random.State.int rng 3 with
    | 0 ->
      Printf.sprintf {| %s(X) :- lab(X, "%s"). |} head (pick Generator.labels_abc)
    | 1 ->
      Printf.sprintf {| %s(Y) :- %s(X), %s(X, Y). |} head (pick preds)
        (Axis.name (pick axes))
    | _ ->
      Printf.sprintf {| %s(X) :- %s(X, Y), lab(Y, "%s"), %s(Y). |} head
        (Axis.name (pick axes)) (pick Generator.labels_abc) (pick preds)
  in
  let nrules = 2 + Random.State.int rng 4 in
  let rules = List.init nrules (fun i -> rule preds.(i mod 2)) in
  AD.parse (String.concat "\n" rules ^ " ?- p.")

let prop_yannakakis_fixpoint_equals_naive =
  qtest ~count:200 "axis datalog: Yannakakis fixpoint = naive fixpoint"
    QCheck2.Gen.(
      let* seed = int_range 0 50_000 in
      let* tseed = int_range 0 50_000 in
      let* n = int_range 1 20 in
      return (random_axis_program seed, random_tree ~seed:tseed ~n ()))
    (fun (p, t) -> Nodeset.equal (AD.run p t) (AD.run_naive p t))

let prop_tau_embedding =
  qtest ~count:100 "tau+ programs embed faithfully"
    QCheck2.Gen.(
      let* tseed = int_range 0 50_000 in
      let* n = int_range 1 20 in
      let* l = oneofl [ "a"; "b"; "c" ] in
      return (l, random_tree ~seed:tseed ~n ()))
    (fun (l, t) ->
      let tau = Mdatalog.Examples.has_ancestor_labeled l in
      Nodeset.equal (Mdatalog.Eval.run tau t) (AD.run (AD.of_tau_program tau) t))

let test_env_predicates () =
  let t = fig2_tree () in
  let p = AD.parse {| out(Y) :- seeds(X), descendant(X, Y). ?- out. |} in
  let env = [ ("seeds", Nodeset.of_list 7 [ 1 ]) ] in
  check_nodeset "descendants of seeds" (Nodeset.of_list 7 [ 2; 3 ]) (AD.run ~env p t)

let suite =
  [
    Alcotest.test_case "parse and check" `Quick test_parse_and_check;
    Alcotest.test_case "transitive axes, no recursion" `Quick
      test_transitive_axes_without_recursion;
    Alcotest.test_case "recursive reachability" `Quick test_recursive_reachability;
    Alcotest.test_case "Example 3.1 embedding" `Quick test_example_31_embedding;
    prop_yannakakis_fixpoint_equals_naive;
    prop_tau_embedding;
    Alcotest.test_case "environment predicates" `Quick test_env_predicates;
  ]
