(* The ops plane:
   - HTTP parsing: units over the error taxonomy (400/431), prefix
     feeding (any prefix of a valid head parses Incomplete or Complete,
     never Reject), and a never-raises property over random bytes;
   - the functorized connection loop over a chunked string transport
     (split/partial reads reassemble, rejects answer the right status);
   - router endpoints, readiness gating and content negotiation;
   - snapshot publication: sequence numbers, counter monotonicity
     across snapshots published from a pooled server run's on_tick;
   - loopback integration: a real listener domain scraped over TCP. *)

open Helpers
module E = Treequery.Engine

let mini_shapes sources =
  Array.of_list
    (List.map
       (fun s -> { Serve.Workload.source = s; query = E.parse_xpath s })
       sources)

module Http = Opsplane.Http
module Router = Opsplane.Router
module Snapshot = Opsplane.Snapshot
module Listener = Opsplane.Listener

(* ------------------------------------------------------------------ *)
(* HTTP parsing *)

let parse_status s =
  match Http.parse s with
  | Http.Complete (req, _) -> `Complete req
  | Http.Incomplete -> `Incomplete
  | Http.Reject (code, _) -> `Reject code

let test_parse_ok () =
  let head =
    "GET /metrics?window=5 HTTP/1.1\r\nHost: x\r\nAccept: text/plain \r\n\r\n"
  in
  match Http.parse head with
  | Http.Complete (req, consumed) ->
    Alcotest.(check string) "method" "GET" req.Http.meth;
    Alcotest.(check string) "path" "/metrics" req.Http.path;
    Alcotest.(check string) "query" "window=5" req.Http.query;
    Alcotest.(check (option string)) "host" (Some "x") (Http.header req "Host");
    Alcotest.(check (option string))
      "accept trimmed" (Some "text/plain") (Http.header req "ACCEPT");
    Alcotest.(check int) "consumed" (String.length head) consumed
  | _ -> Alcotest.fail "expected Complete"

let test_parse_bare_lf () =
  match parse_status "GET / HTTP/1.1\nHost: x\n\n" with
  | `Complete req -> Alcotest.(check string) "path" "/" req.Http.path
  | _ -> Alcotest.fail "bare-LF head should parse"

let test_parse_errors () =
  let check_reject name code input =
    match parse_status input with
    | `Reject c -> Alcotest.(check int) name code c
    | _ -> Alcotest.fail (name ^ ": expected Reject")
  in
  check_reject "no version" 400 "GET /\r\n\r\n";
  check_reject "not http" 400 "GET / SPDY/3\r\n\r\n";
  check_reject "relative target" 400 "GET metrics HTTP/1.1\r\n\r\n";
  check_reject "extra spaces" 400 "GET / two HTTP/1.1\r\n\r\n";
  check_reject "header without colon" 400 "GET / HTTP/1.1\r\nbogus\r\n\r\n";
  check_reject "empty header name" 400 "GET / HTTP/1.1\r\n: v\r\n\r\n";
  check_reject "long request line" 431
    ("GET /" ^ String.make 5000 'a' ^ " HTTP/1.1\r\n\r\n");
  check_reject "too many headers" 431
    ("GET / HTTP/1.1\r\n"
    ^ String.concat "" (List.init 100 (fun i -> Printf.sprintf "h%d: v\r\n" i))
    ^ "\r\n");
  (* an endless header section trips the head cap without a terminator *)
  check_reject "oversized head" 431 (String.make 20000 'x');
  match parse_status "GET / HTTP/1.1\r\nHost: x\r\n" with
  | `Incomplete -> ()
  | _ -> Alcotest.fail "unterminated head should be Incomplete"

let valid_head =
  "GET /metrics HTTP/1.1\r\nHost: localhost\r\nAccept: application/openmetrics-text\r\n\r\n"

let test_parse_prefix_stability () =
  (* feeding any prefix never rejects: the parser waits for the blank
     line before judging the request *)
  for i = 0 to String.length valid_head - 1 do
    match parse_status (String.sub valid_head 0 i) with
    | `Incomplete -> ()
    | `Reject _ -> Alcotest.fail (Printf.sprintf "prefix %d rejected" i)
    | `Complete _ -> Alcotest.fail (Printf.sprintf "prefix %d completed" i)
  done;
  match parse_status valid_head with
  | `Complete _ -> ()
  | _ -> Alcotest.fail "full head should complete"

let prop_parse_never_raises =
  qtest ~count:500 "random bytes never crash the parser"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 200))
    (fun s ->
      match Http.parse s with
      | Http.Complete _ | Http.Incomplete | Http.Reject _ -> true)

(* ------------------------------------------------------------------ *)
(* connection loop over a chunked string transport *)

module Chunk_transport = struct
  type conn = { mutable pending : string list; out : Buffer.t }

  let read c buf off len =
    match c.pending with
    | [] -> 0
    | s :: rest ->
      let n = min len (String.length s) in
      Bytes.blit_string s 0 buf off n;
      c.pending <-
        (if n < String.length s then
           String.sub s n (String.length s - n) :: rest
         else rest);
      n

  let write c s = Buffer.add_string c.out s
end

module Conn = Http.Make (Chunk_transport)

let run_conn ?handler chunks =
  let handler =
    match handler with
    | Some h -> h
    | None -> fun (req : Http.request) -> Http.response 200 ("echo " ^ req.Http.path ^ "\n")
  in
  let c = { Chunk_transport.pending = chunks; out = Buffer.create 128 } in
  Conn.serve_connection ~handler c;
  Buffer.contents c.Chunk_transport.out

let response_status raw =
  match String.split_on_char ' ' raw with
  | _ :: code :: _ -> int_of_string code
  | _ -> -1

let test_conn_single_read () =
  let raw = run_conn [ valid_head ] in
  Alcotest.(check int) "status" 200 (response_status raw);
  Alcotest.(check bool) "body echoed" true
    (String.length raw > 0
    && String.sub raw (String.length raw - 14) 14 = "echo /metrics\n")

let test_conn_rejects () =
  Alcotest.(check int) "malformed" 400 (response_status (run_conn [ "garbage\r\n\r\n" ]));
  Alcotest.(check int) "oversized" 431
    (response_status (run_conn [ String.make 20000 'x' ]));
  Alcotest.(check int) "truncated" 400 (response_status (run_conn [ "GET / HT" ]));
  Alcotest.(check string) "eof before any byte writes nothing" "" (run_conn [])

let test_conn_head_only () =
  let raw =
    run_conn [ "HEAD /metrics HTTP/1.1\r\n\r\n" ]
  in
  Alcotest.(check int) "status" 200 (response_status raw);
  (* Content-Length advertised, body dropped *)
  Alcotest.(check bool) "no body" true
    (let stop = "\r\n\r\n" in
     let n = String.length raw in
     String.sub raw (n - 4) 4 = stop)

let prop_conn_split_reads =
  (* any chunking of a valid request reassembles to the same 200 *)
  qtest ~count:200 "split reads reassemble"
    QCheck2.Gen.(list_size (0 -- 8) (1 -- String.length valid_head))
    (fun cuts ->
      let cuts =
        List.sort_uniq compare
          (List.filter (fun c -> c < String.length valid_head) cuts)
      in
      let chunks =
        let rec go start = function
          | [] -> [ String.sub valid_head start (String.length valid_head - start) ]
          | c :: rest -> String.sub valid_head start (c - start) :: go c rest
        in
        go 0 cuts
      in
      response_status (run_conn chunks) = 200)

(* ------------------------------------------------------------------ *)
(* router *)

let get ?(accept = "") ?(meth = "GET") path =
  {
    Http.meth;
    path;
    query = "";
    headers = (if accept = "" then [] else [ ("accept", accept) ]);
  }

let test_router_endpoints () =
  let p = Snapshot.create ~version:"9.9.9" ~strategies:"s1,s2" () in
  let st = Router.make p in
  (* before the first publish: alive but not ready, no metrics *)
  Alcotest.(check int) "healthz" 200 (Router.handle st (get "/healthz")).Http.status;
  Alcotest.(check int) "readyz gated" 503 (Router.handle st (get "/readyz")).Http.status;
  Alcotest.(check int) "metrics gated" 503 (Router.handle st (get "/metrics")).Http.status;
  let _ = Snapshot.publish ~report:(Obs.Report.capture ()) p in
  Alcotest.(check int) "readyz" 200 (Router.handle st (get "/readyz")).Http.status;
  let m = Router.handle st (get "/metrics") in
  Alcotest.(check int) "metrics" 200 m.Http.status;
  let body = m.Http.body in
  Alcotest.(check bool) "ends with EOF" true
    (String.length body >= 6
    && String.sub body (String.length body - 6) 6 = "# EOF\n");
  Alcotest.(check bool) "carries build info" true
    (String.length body > 0
    &&
    let rec find i =
      i + 20 <= String.length body
      && (String.sub body i 20 = "treequery_build_info" || find (i + 1))
    in
    find 0);
  Alcotest.(check int) "statusz" 200 (Router.handle st (get "/statusz")).Http.status;
  Alcotest.(check int) "tracez" 200 (Router.handle st (get "/tracez")).Http.status;
  Alcotest.(check int) "flightz absent" 404 (Router.handle st (get "/flightz")).Http.status;
  Alcotest.(check int) "unknown" 404 (Router.handle st (get "/nope")).Http.status;
  Alcotest.(check int) "post" 405 (Router.handle st (get ~meth:"POST" "/metrics")).Http.status

let test_router_negotiation () =
  let p = Snapshot.create () in
  let st = Router.make p in
  let _ = Snapshot.publish p in
  let plain = Router.handle st (get "/metrics") in
  Alcotest.(check string) "default content type"
    "text/plain; version=0.0.4; charset=utf-8" plain.Http.content_type;
  let om = Router.handle st (get ~accept:"application/openmetrics-text" "/metrics") in
  Alcotest.(check string) "negotiated content type"
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
    om.Http.content_type

let test_router_flightz () =
  let p = Snapshot.create () in
  let st = Router.make p in
  let recorder = Telemetry.Flight_recorder.create () in
  let _ = Snapshot.publish ~recorder p in
  let r = Router.handle st (get "/flightz") in
  Alcotest.(check int) "flightz" 200 r.Http.status;
  (* the dump is well-formed JSON *)
  ignore (Obs.Json.of_string r.Http.body);
  let tz = Router.handle st (get "/tracez") in
  ignore (Obs.Json.of_string tz.Http.body)

(* ------------------------------------------------------------------ *)
(* snapshot publication *)

let test_snapshot_seq () =
  let p = Snapshot.create () in
  Alcotest.(check int) "seq 0 before publish" 0 (Snapshot.seq p);
  Alcotest.(check bool) "no latest" true (Snapshot.latest p = None);
  let s1 = Snapshot.publish p in
  let s2 = Snapshot.publish p in
  Alcotest.(check int) "seq 1" 1 s1.Snapshot.seq;
  Alcotest.(check int) "seq 2" 2 s2.Snapshot.seq;
  match Snapshot.latest p with
  | Some s -> Alcotest.(check int) "latest is last published" 2 s.Snapshot.seq
  | None -> Alcotest.fail "latest after publish"

let counters_monotone (a : Snapshot.t) (b : Snapshot.t) =
  List.for_all
    (fun (name, v) ->
      match List.assoc_opt name b.Snapshot.report.Obs.Report.counters with
      | Some v' -> v' >= v
      | None -> v = 0)
    a.Snapshot.report.Obs.Report.counters

(* the load-bearing property: snapshots published from a pooled server
   run's on_tick (admitting domain, after shard merge) carry
   monotonically non-decreasing counter totals *)
let test_snapshot_monotone_pooled () =
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      Obs.set_enabled true;
      let t = Treekit.Generator.xmark ~seed:11 ~scale:20 () in
      Treekit.Tree.seal t;
      let shapes =
        mini_shapes [ "//mail[date]"; "//item"; "//person/name"; "//a//b" ]
      in
      let reqs =
        List.init 400 (fun i ->
            { Serve.Workload.id = i; shape = i mod 4; arrival = None })
      in
      let pool = Serve.Pool.create ~domains:3 () in
      let p = Snapshot.create () in
      let snaps = ref [] in
      let cfg =
        Serve.Server.config ~concurrency:8 ~pool ~tick_every:1e-4
          ~on_tick:(fun _ _ -> snaps := Snapshot.publish p :: !snaps)
          ()
      in
      let stats =
        Fun.protect
          ~finally:(fun () -> Serve.Pool.shutdown pool)
          (fun () -> Serve.Server.run cfg t shapes reqs)
      in
      Alcotest.(check int) "served" 400 stats.Serve.Server.served;
      snaps := Snapshot.publish p :: !snaps;
      let ordered = List.rev !snaps in
      Alcotest.(check bool) "published at least twice" true
        (List.length ordered >= 2);
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool)
            (Printf.sprintf "counters monotone %d -> %d" a.Snapshot.seq
               b.Snapshot.seq)
            true (counters_monotone a b);
          Alcotest.(check bool) "seq monotone" true (b.Snapshot.seq > a.Snapshot.seq);
          pairs rest
        | _ -> ()
      in
      pairs ordered;
      (* the final snapshot agrees with the run's own accounting *)
      let last = List.nth ordered (List.length ordered - 1) in
      match
        List.assoc_opt "serve_requests_served"
          last.Snapshot.report.Obs.Report.counters
      with
      | Some n -> Alcotest.(check int) "final snapshot saw every request" 400 n
      | None -> Alcotest.fail "serve_requests_served missing from snapshot")

(* ------------------------------------------------------------------ *)
(* loopback integration: a real listener on an ephemeral port *)

let raw_request ~port data =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let b = Bytes.of_string data in
      ignore (Unix.write sock b 0 (Bytes.length b));
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        match Unix.read sock chunk 0 1024 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception _ -> ()
      in
      drain ();
      Buffer.contents buf)

let test_listener_loopback () =
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      Obs.set_enabled true;
      let c = Obs.Counter.make "opsplane_test_events" in
      let p = Snapshot.create ~version:"t" ~strategies:"s" () in
      let router = Router.make p in
      let l = Listener.start ~port:0 ~handler:(Router.handle router) () in
      Fun.protect
        ~finally:(fun () -> Listener.stop l)
        (fun () ->
          let port = Listener.port l in
          let status, body = Listener.get ~port "/healthz" in
          Alcotest.(check int) "healthz over tcp" 200 status;
          Alcotest.(check string) "healthz body" "ok\n" body;
          Obs.Counter.incr c;
          Obs.Counter.incr c;
          let _ = Snapshot.publish p in
          let status, body = Listener.get ~port "/metrics" in
          Alcotest.(check int) "metrics over tcp" 200 status;
          Alcotest.(check bool) "ends with EOF" true
            (String.length body >= 6
            && String.sub body (String.length body - 6) 6 = "# EOF\n");
          let has_line needle =
            List.exists (fun l -> l = needle) (String.split_on_char '\n' body)
          in
          Alcotest.(check bool) "counter scraped" true
            (has_line "treequery_opsplane_test_events_total 2");
          (* consecutive scrapes observe non-decreasing counters *)
          Obs.Counter.incr c;
          let _ = Snapshot.publish p in
          let _, body' = Listener.get ~port "/metrics" in
          Alcotest.(check bool) "scrape monotone" true
            (List.exists
               (fun l -> l = "treequery_opsplane_test_events_total 3")
               (String.split_on_char '\n' body'));
          (* error paths over the real transport *)
          Alcotest.(check int) "tcp malformed" 400
            (response_status (raw_request ~port "garbage\r\n\r\n"));
          Alcotest.(check int) "tcp oversized" 431
            (response_status (raw_request ~port (String.make 20000 'x')));
          Alcotest.(check int) "tcp not found" 404
            (let s, _ = Listener.get ~port "/missing" in
             s);
          Alcotest.(check bool) "connections counted" true
            (Listener.connections l >= 6)))

let suite =
  [
    Alcotest.test_case "http: parse ok" `Quick test_parse_ok;
    Alcotest.test_case "http: bare LF" `Quick test_parse_bare_lf;
    Alcotest.test_case "http: error taxonomy" `Quick test_parse_errors;
    Alcotest.test_case "http: prefix stability" `Quick test_parse_prefix_stability;
    prop_parse_never_raises;
    Alcotest.test_case "conn: single read" `Quick test_conn_single_read;
    Alcotest.test_case "conn: rejects" `Quick test_conn_rejects;
    Alcotest.test_case "conn: HEAD" `Quick test_conn_head_only;
    prop_conn_split_reads;
    Alcotest.test_case "router: endpoints" `Quick test_router_endpoints;
    Alcotest.test_case "router: negotiation" `Quick test_router_negotiation;
    Alcotest.test_case "router: flightz/tracez" `Quick test_router_flightz;
    Alcotest.test_case "snapshot: sequence" `Quick test_snapshot_seq;
    Alcotest.test_case "snapshot: monotone under pooled run" `Quick
      test_snapshot_monotone_pooled;
    Alcotest.test_case "listener: loopback scrape" `Quick test_listener_loopback;
  ]
