open Treekit
open Helpers
module O = Ordpath

let build_random ~seed ~inserts =
  let rng = Random.State.make [| seed |] in
  let doc = O.create "r" in
  let nodes = ref [ O.root doc ] in
  let arr = ref [| O.root doc |] in
  for _ = 1 to inserts do
    let v = (!arr).(Random.State.int rng (Array.length !arr)) in
    let lbl = Generator.labels_abc.(Random.State.int rng 3) in
    let n =
      match Random.State.int rng 3 with
      | 0 -> O.insert_last_child doc v lbl
      | 1 -> O.insert_first_child doc v lbl
      | _ -> (
        try O.insert_after doc v lbl
        with Invalid_argument _ -> O.insert_last_child doc v lbl)
    in
    nodes := n :: !nodes;
    arr := Array.append !arr [| n |]
  done;
  (doc, !nodes)

let test_basics () =
  let doc = O.create "r" in
  let r = O.root doc in
  let a = O.insert_last_child doc r "a" in
  let b = O.insert_last_child doc r "b" in
  let m = O.insert_after doc a "m" in
  let a1 = O.insert_first_child doc a "a1" in
  Alcotest.(check string) "root path" "(root)" (O.ordpath_string r);
  Alcotest.(check (list int)) "first child" [ 1 ] (O.ordpath a);
  Alcotest.(check (list int)) "second child" [ 3 ] (O.ordpath b);
  Alcotest.(check (list int)) "careted between" [ 2; 1 ] (O.ordpath m);
  Alcotest.(check string) "dotted" "2.1" (O.ordpath_string m);
  Alcotest.(check (list int)) "nested" [ 1; 1 ] (O.ordpath a1);
  Alcotest.(check bool) "anc" true (O.is_ancestor r m);
  Alcotest.(check bool) "anc2" true (O.is_ancestor a a1);
  Alcotest.(check bool) "caret not child" false (O.is_ancestor a m);
  Alcotest.(check bool) "order a < m" true (O.compare_doc a m < 0);
  Alcotest.(check bool) "order m < b" true (O.compare_doc m b < 0);
  Alcotest.(check bool) "following" true (O.is_following a1 m)

let prop_matches_snapshot =
  qtest ~count:30 "ordpath tests = static tree on the snapshot"
    QCheck2.Gen.(
      let* seed = int_range 0 10_000 in
      let* inserts = int_range 1 150 in
      return (seed, inserts))
    (fun (seed, inserts) ->
      let doc, nodes = build_random ~seed ~inserts in
      let tree, pre_of = O.snapshot doc in
      Tree.validate tree = Ok ()
      && List.for_all
           (fun u ->
             List.for_all
               (fun v ->
                 let pu = pre_of u and pv = pre_of v in
                 O.is_ancestor u v = Tree.is_ancestor tree pu pv
                 && (pu = pv || O.is_following u v = Tree.is_following tree pu pv)
                 && compare (O.compare_doc u v) 0 = compare (compare pu pv) 0
                 && O.label u = Tree.label tree pu)
               nodes)
           nodes)

let test_group_invariant () =
  (* every sibling group is evens-then-one-odd; checked over a random
     document by re-deriving groups from parent paths *)
  let doc, nodes = build_random ~seed:5 ~inserts:500 in
  ignore doc;
  List.iter
    (fun n ->
      let path = Array.of_list (O.ordpath n) in
      (* the group is the suffix below the deepest proper ancestor *)
      let plen =
        let ancestors =
          List.filter (fun p -> O.is_ancestor p n) nodes
          |> List.sort (fun a b ->
                 compare (List.length (O.ordpath b)) (List.length (O.ordpath a)))
        in
        match ancestors with [] -> 0 | p :: _ -> List.length (O.ordpath p)
      in
      let group = Array.sub path plen (Array.length path - plen) in
      let k = Array.length group in
      if k > 0 then begin
        for i = 0 to k - 2 do
          Alcotest.(check bool) "inner even" true (group.(i) land 1 = 0)
        done;
        Alcotest.(check bool) "last odd" true (group.(k - 1) land 1 = 1)
      end)
    nodes

let test_no_relabeling_ever () =
  (* labels are immutable: capture them, hammer insertions, compare *)
  let doc = O.create "r" in
  let a = O.insert_last_child doc (O.root doc) "a" in
  let b = O.insert_after doc a "b" in
  let before = (O.ordpath a, O.ordpath b) in
  let cur = ref a in
  for _ = 1 to 500 do
    cur := O.insert_after doc !cur "m"
  done;
  Alcotest.(check bool) "labels untouched" true
    (before = (O.ordpath a, O.ordpath b));
  Alcotest.(check int) "document grew" 503 (O.size doc)

let test_alternating_growth () =
  (* label length grows only under adversarial bisection *)
  let doc = O.create "r" in
  let left = O.insert_last_child doc (O.root doc) "l" in
  let _right = O.insert_after doc left "r" in
  let lo = ref left in
  for _ = 1 to 40 do
    (* insert right after lo, then treat the new node as the next hi and
       insert again right after lo — alternation forces caret nesting *)
    let mid = O.insert_after doc !lo "m" in
    lo := if Random.bool () then mid else !lo
  done;
  let tree, _ = O.snapshot doc in
  Alcotest.(check bool) "still valid" true (Tree.validate tree = Ok ());
  Alcotest.(check bool) "labels bounded by inserts" true
    (O.max_label_length doc <= 50)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    prop_matches_snapshot;
    Alcotest.test_case "group invariant" `Quick test_group_invariant;
    Alcotest.test_case "no relabeling ever" `Quick test_no_relabeling_ever;
    Alcotest.test_case "alternating growth bounded" `Quick test_alternating_growth;
  ]
