(* The standing-query index: the merged spine trie against individual
   Path_matchers, registry dedup/churn semantics, session refresh, and
   the standing-match differential oracle at the 1000-case acceptance
   bar. *)
open Treekit
open Helpers
module PP = Streamq.Path_pattern
module PM = Streamq.Path_matcher
module Trie = Subscribe.Trie
module Index = Subscribe.Index
module E = Treequery.Engine

(* ------------------------------------------------------------------ *)
(* trie vs individual matchers *)

let trie_match trie handles t =
  let p = Trie.pass trie in
  Trie.begin_doc p;
  Event.iter t (Trie.push p);
  ignore handles;
  List.sort compare (Trie.fired p)

let prop_trie_equals_matchers =
  qtest ~count:300 "merged trie = one Path_matcher per pattern"
    QCheck2.Gen.(
      let* seed = int_range 0 50_000 in
      let* tseed = int_range 0 50_000 in
      let* k = int_range 1 10 in
      let* n = int_range 1 50 in
      let pats =
        List.init k (fun i ->
            PP.random ~seed:(seed + i) ~length:(1 + (i mod 4))
              ~labels:Generator.labels_abc ())
      in
      return (pats, random_tree ~seed:tseed ~n ()))
    (fun (pats, t) ->
      let trie = Trie.create () in
      List.iteri
        (fun i p -> Trie.attach trie ~state:(Trie.add trie p) ~handle:i)
        pats;
      let got = trie_match trie pats t in
      let want =
        List.concat (List.mapi (fun i p -> if PM.matches t p then [ i ] else []) pats)
      in
      got = List.sort compare want)

let test_trie_prefix_sharing () =
  let trie = Trie.create () in
  let s1 = Trie.add trie (PP.of_string "//a/b/c") in
  let s2 = Trie.add trie (PP.of_string "//a/b/d") in
  let s3 = Trie.add trie (PP.of_string "//a/b/c") in
  Alcotest.(check int) "identical spines share a terminal" s1 s3;
  Alcotest.(check bool) "distinct suffixes diverge" true (s1 <> s2);
  (* root + a + b + c + d: prefixes //a/b shared *)
  Alcotest.(check int) "states bounded by distinct prefixes" 5 (Trie.states trie)

let test_trie_pass_reuse_across_growth () =
  (* a pooled pass must survive trie growth between documents *)
  let trie = Trie.create () in
  Trie.attach trie ~state:(Trie.add trie (PP.of_string "//a")) ~handle:0;
  let p = Trie.pass trie in
  let t = Xml.parse "<r><a><b/></a></r>" in
  Trie.begin_doc p;
  Event.iter t (Trie.push p);
  Alcotest.(check (list int)) "first doc" [ 0 ] (List.sort compare (Trie.fired p));
  Trie.attach trie ~state:(Trie.add trie (PP.of_string "//a/b")) ~handle:1;
  Trie.begin_doc p;
  Event.iter t (Trie.push p);
  Alcotest.(check (list int)) "after growth" [ 0; 1 ]
    (List.sort compare (Trie.fired p))

(* ------------------------------------------------------------------ *)
(* registry semantics *)

let xq s = E.parse_xpath s

let test_index_dedup_fanout () =
  let idx = Index.create () in
  let c1 = Index.register idx ~id:1 (xq "//a/b") in
  let c2 = Index.register idx ~id:2 (xq "//a/b") in
  Alcotest.(check bool) "both spine" true (c1 = Index.Spine && c2 = Index.Spine);
  Alcotest.(check int) "one entry" 1 (Index.entries idx);
  Alcotest.(check int) "two live ids" 2 (Index.live idx);
  let s = Index.session idx in
  let t = Xml.parse "<r><a><b/></a></r>" in
  Tree.seal t;
  Alcotest.(check (list int)) "fan-out fires both ids" [ 1; 2 ]
    (Index.match_tree s t);
  Alcotest.(check bool) "unregister live id" true (Index.unregister idx ~id:1);
  Alcotest.(check bool) "unregister dead id is idempotent" false
    (Index.unregister idx ~id:1);
  Alcotest.(check int) "entry survives while an id remains" 1 (Index.entries idx);
  Alcotest.(check (list int)) "remaining id still fires" [ 2 ]
    (Index.match_tree s t);
  Alcotest.(check bool) "last id out" true (Index.unregister idx ~id:2);
  Alcotest.(check int) "entry dropped" 0 (Index.entries idx);
  Alcotest.(check (list int)) "nothing fires" [] (Index.match_tree s t);
  Alcotest.check_raises "duplicate live id rejected"
    (Invalid_argument "Subscribe.Index.register: duplicate id 5")
    (fun () ->
      ignore (Index.register idx ~id:5 (xq "//a"));
      ignore (Index.register idx ~id:5 (xq "//b")))

let test_index_classes () =
  let idx = Index.create () in
  Alcotest.(check bool) "spine" true
    (Index.register idx ~id:0 (xq "//a/b") = Index.Spine);
  Alcotest.(check bool) "twig" true
    (Index.register idx ~id:1 (xq "//a[child::b]") = Index.Twig);
  Alcotest.(check bool) "general (reverse axis)" true
    (Index.register idx ~id:2 (xq "//a/parent::b") = Index.General);
  Alcotest.(check bool) "auto" true
    (Index.register_automaton idx ~id:3
       (Automata.Automaton.exists_label "c")
     = Index.Auto);
  let counts = Index.class_counts idx in
  List.iter
    (fun cls -> Alcotest.(check int) cls 1 (List.assoc cls counts))
    [ "spine"; "twig"; "general"; "auto" ];
  let s = Index.session idx in
  let t = Xml.parse "<r><a><b/><c/></a></r>" in
  Tree.seal t;
  (* //a/b matches, //a[child::b] anchored at root matches, parent
     query empty, automaton sees the c leaf *)
  Alcotest.(check (list int)) "all classes fire in one pass" [ 0; 1; 3 ]
    (Index.match_tree s t)

let test_session_refresh_on_churn () =
  let idx = Index.create () in
  let s = Index.session idx in
  let t = Xml.parse "<r><a><b/></a></r>" in
  Tree.seal t;
  Alcotest.(check (list int)) "empty index" [] (Index.match_tree s t);
  ignore (Index.register idx ~id:7 (xq "//b"));
  Alcotest.(check (list int)) "sees registration" [ 7 ] (Index.match_tree s t);
  ignore (Index.register idx ~id:8 (xq "//a[child::b]"));
  ignore (Index.unregister idx ~id:7);
  Alcotest.(check (list int)) "sees churn" [ 8 ] (Index.match_tree s t)

(* fired sets must agree with one-at-a-time evaluation on generated
   documents as the population churns — the oracle in miniature, but
   through Workload-shaped queries and a reused session *)
let prop_index_equals_one_at_a_time =
  qtest ~count:60 "index = one-at-a-time over churning workload shapes"
    QCheck2.Gen.(
      let* seed = int_range 0 20_000 in
      let* nshapes = int_range 1 12 in
      let* tseed = int_range 0 20_000 in
      return (seed, nshapes, tseed))
    (fun (seed, nshapes, tseed) ->
      let shapes =
        Serve.Workload.shapes ~rng:(Random.State.make [| seed |]) ~count:nshapes
      in
      let idx = Index.create () in
      Array.iteri
        (fun i (sh : Serve.Workload.shape) ->
          ignore (Index.register idx ~id:i sh.query))
        shapes;
      let s = Index.session idx in
      let check_tree t =
        Tree.seal t;
        let fired = Index.match_tree s t in
        let want =
          Array.to_list shapes
          |> List.mapi (fun i (sh : Serve.Workload.shape) ->
                 if E.eval_boolean sh.query t then [ i ] else [])
          |> List.concat
        in
        fired = want
      in
      let t1 = random_tree ~seed:tseed ~n:30 () in
      let t2 = Generator.xmark ~seed:tseed ~scale:1 () in
      check_tree t1 && check_tree t2)

(* ------------------------------------------------------------------ *)
(* the acceptance bar: standing-match oracle over 1k cases *)

let test_oracle_1k () =
  let oracle =
    List.find
      (fun (o : Check.Oracles.t) -> o.name = "standing-match")
      Check.Oracles.all
  in
  let stats =
    Check.Runner.run
      { Check.Runner.default with cases = 1_000; oracles = [ oracle ] }
  in
  Alcotest.(check int) "no discrepancies" 0
    (Check.Runner.discrepancy_count stats);
  List.iter
    (fun (_, passes, _, fails) ->
      Alcotest.(check int) "no fails" 0 fails;
      Alcotest.(check bool) "mostly applicable" true (passes >= 900))
    stats.Check.Runner.per_oracle

let suite =
  [
    prop_trie_equals_matchers;
    Alcotest.test_case "trie prefix sharing" `Quick test_trie_prefix_sharing;
    Alcotest.test_case "pooled pass survives trie growth" `Quick
      test_trie_pass_reuse_across_growth;
    Alcotest.test_case "dedup fan-out and unregister" `Quick
      test_index_dedup_fanout;
    Alcotest.test_case "class routing, one pass fires all" `Quick
      test_index_classes;
    Alcotest.test_case "session refresh on churn" `Quick
      test_session_refresh_on_churn;
    prop_index_equals_one_at_a_time;
    Alcotest.test_case "standing-match oracle x1000" `Slow test_oracle_1k;
  ]
