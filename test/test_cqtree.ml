open Treekit
open Helpers
module Q = Cqtree.Query
module JT = Cqtree.Join_tree
module Y = Cqtree.Yannakakis
module N = Cqtree.Naive
module RW = Cqtree.Rewrite

let all_forward_axes =
  [
    Axis.Child;
    Axis.Descendant;
    Axis.Descendant_or_self;
    Axis.Next_sibling;
    Axis.Following_sibling;
    Axis.Following_sibling_or_self;
    Axis.Following;
  ]

(* ------------------------------------------------------------------ *)
(* parsing and basics *)

let test_parse () =
  let q = Q.of_string {| q(X) :- lab(X, "a"), descendant(X, Y), lab(Y, "b"). |} in
  Alcotest.(check (list string)) "head" [ "X" ] q.head;
  Alcotest.(check int) "atoms" 3 (Q.atom_count q);
  Alcotest.(check (list string)) "vars" [ "X"; "Y" ] (Q.vars q);
  Alcotest.(check bool) "unary" true (Q.is_unary q);
  (* paper names for axes *)
  let q2 = Q.of_string {| q(X) :- child+(X, Y), nextsibling(Y, Z). |} in
  Alcotest.(check bool) "child+ = descendant" true
    (List.mem (Q.A (Axis.Descendant, "X", "Y")) q2.atoms);
  (* boolean *)
  let q3 = Q.of_string {| q :- lab(X, "a"). |} in
  Alcotest.(check bool) "boolean" true (Q.is_boolean q3)

let test_parse_roundtrip () =
  let q = Q.of_string {| q(X, Y) :- lab(X, "a"), following(X, Y), root(Z), ancestor(Y, Z). |} in
  Alcotest.(check bool) "roundtrip" true (Q.of_string (Q.to_string q) = q)

let test_parse_errors () =
  let bad s = match Q.of_string s with exception Failure _ -> true | _ -> false in
  Alcotest.(check bool) "unknown axis" true (bad {| q(X) :- sideways(X, Y). |});
  Alcotest.(check bool) "unsafe head" true (bad {| q(Z) :- lab(X, "a"). |});
  Alcotest.(check bool) "lab misuse" true (bad {| q(X) :- lab(X). |})

let test_normalize_forward () =
  let q = Q.of_string {| q(X) :- parent(X, Y), self(Y, Z), lab(Z, "a"). |} in
  let q' = Q.normalize_forward q in
  Alcotest.(check bool) "only forward axes" true
    (List.for_all (function Q.A (a, _, _) -> Axis.is_forward a | Q.U _ -> true) q'.atoms);
  Alcotest.(check bool) "self removed" true
    (List.for_all (function Q.A (Axis.Self, _, _) -> false | _ -> true) q'.atoms);
  (* semantics preserved *)
  let t = fig2_tree () in
  Alcotest.(check bool) "same answers" true (N.solutions q t = N.solutions q' t)

(* ------------------------------------------------------------------ *)
(* join trees and acyclicity *)

let test_acyclicity () =
  let acyclic = Q.of_string {| q(X) :- child(X, Y), child(X, Z), descendant(Y, W). |} in
  Alcotest.(check bool) "tree query acyclic" true (JT.is_acyclic acyclic);
  let cyclic =
    Q.of_string {| q(X) :- child(X, Y), child(Y, Z), descendant(X, Z). |}
  in
  Alcotest.(check bool) "triangle cyclic" false (JT.is_acyclic cyclic);
  let parallel = Q.of_string {| q(X) :- child(X, Y), descendant(X, Y). |} in
  Alcotest.(check bool) "parallel atoms still acyclic" true (JT.is_acyclic parallel);
  let disconnected = Q.of_string {| q(X) :- lab(X, "a"), lab(Y, "b"). |} in
  Alcotest.(check bool) "disconnected acyclic" true (JT.is_acyclic disconnected)

let test_join_tree_rooting () =
  let q = Q.of_string {| q(Y) :- child(X, Y), lab(X, "a"). |} in
  match JT.build q with
  | Error m -> Alcotest.fail m
  | Ok jt ->
    (match jt.components with
    | [ root ] -> Alcotest.(check string) "rooted at head var" "Y" root.var
    | _ -> Alcotest.fail "expected one component")

let test_self_loop_handling () =
  let t = fig2_tree () in
  (* irreflexive self-loop: unsatisfiable *)
  let q = Q.of_string {| q(X) :- child(X, X). |} in
  Alcotest.(check bool) "unsat self-loop" true (N.solutions q t = []);
  Alcotest.(check bool) "yannakakis agrees" true (Y.solutions q t = []);
  (* reflexive-closure self-loop: trivially true *)
  let q2 = Q.of_string {| q(X) :- descendant-or-self(X, X), lab(X, "b"). |} in
  check_nodeset "reflexive loop dropped" (Nodeset.of_list 7 [ 1; 5 ]) (Y.unary q2 t)

(* ------------------------------------------------------------------ *)
(* Yannakakis = naive on acyclic queries *)

let acyclic_case_gen =
  QCheck2.Gen.(
    let* qseed = int_range 0 100_000 in
    let* tseed = int_range 0 100_000 in
    let* nvars = int_range 1 5 in
    let* n = int_range 1 25 in
    let* head_arity = int_range 0 nvars in
    let q =
      Cqtree.Generator.acyclic ~seed:qseed ~nvars
        ~axes:(all_forward_axes @ [ Axis.Parent; Axis.Ancestor; Axis.Preceding ])
        ~labels:Generator.labels_abc ~extra_atom_prob:0.3 ~head_arity ()
    in
    return (q, random_tree ~seed:tseed ~n ()))

let prop_yannakakis_equals_naive =
  qtest ~count:250 "Yannakakis = naive (acyclic, k-ary)" acyclic_case_gen
    (fun (q, t) -> Y.solutions q t = N.solutions q t)

let prop_yannakakis_boolean_unary =
  qtest ~count:200 "Yannakakis boolean/unary agree with solutions" acyclic_case_gen
    (fun (q, t) ->
      let qb = { q with Q.head = [] } in
      let qu = { q with Q.head = [ List.hd (Q.vars q) ] } in
      Y.boolean qb t = (N.solutions qb t <> [])
      && Nodeset.elements (Y.unary qu t)
         = List.map (fun a -> a.(0)) (N.solutions qu t))

let prop_domains_are_arc_consistent =
  (* Full reduction = maximal arc-consistent pre-valuation when each
     variable pair carries one atom.  With parallel atoms Yannakakis merges
     them into one conjunctive constraint, which is strictly stronger than
     per-atom arc-consistency, so there the reduced domains are contained
     in the AC pre-valuation. *)
  qtest ~count:150 "full reduction vs maximal AC pre-valuation"
    acyclic_case_gen (fun (q, t) ->
      let qc = Q.normalize_forward q in
      let has_parallel_atoms =
        let pairs =
          List.filter_map
            (function
              | Q.A (_, x, y) -> Some (if x < y then (x, y) else (y, x))
              | Q.U _ -> None)
            qc.atoms
        in
        List.length pairs <> List.length (List.sort_uniq compare pairs)
      in
      match Actree.Arc_consistency.direct qc t with
      | None ->
        (* unsatisfiable: Yannakakis domains must be all empty *)
        List.for_all (fun (_, s) -> Nodeset.is_empty s) (Y.domains qc t)
      | Some pv ->
        let d = Y.domains qc t in
        List.for_all
          (fun (x, s) ->
            let ac = Actree.Prevaluation.find pv x in
            if has_parallel_atoms then Nodeset.subset s ac else Nodeset.equal s ac)
          d)

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let test_table1_matches_paper () =
  (* the exact table from the paper *)
  let unsat_cells =
    [
      (Axis.Child, Axis.Child);
      (Axis.Child, Axis.Descendant);
      (Axis.Next_sibling, Axis.Child);
      (Axis.Next_sibling, Axis.Descendant);
      (Axis.Next_sibling, Axis.Next_sibling);
      (Axis.Next_sibling, Axis.Following_sibling);
      (Axis.Following_sibling, Axis.Child);
      (Axis.Following_sibling, Axis.Descendant);
    ]
  in
  List.iter
    (fun r ->
      List.iter
        (fun s ->
          let want = not (List.mem (r, s) unsat_cells) in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s" (Axis.name r) (Axis.name s))
            want (Cqtree.Sat_table.sat r s))
        Cqtree.Sat_table.axes)
    Cqtree.Sat_table.axes

let test_table1_brute_force () =
  (* exhaustive verification over all trees with ≤ 5 nodes *)
  List.iter
    (fun r ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "brute %s/%s" (Axis.name r) (Axis.name s))
            (Cqtree.Sat_table.sat r s)
            (Cqtree.Sat_table.brute_force r s ~max_size:5))
        Cqtree.Sat_table.axes)
    Cqtree.Sat_table.axes

(* ------------------------------------------------------------------ *)
(* Theorem 5.1 rewriting *)

let arbitrary_case_gen =
  QCheck2.Gen.(
    let* qseed = int_range 0 100_000 in
    let* tseed = int_range 0 100_000 in
    let* nvars = int_range 1 4 in
    let* natoms = int_range 1 4 in
    let* n = int_range 1 18 in
    let q =
      Cqtree.Generator.arbitrary ~seed:qseed ~nvars ~natoms
        ~axes:
          (all_forward_axes
          @ [ Axis.Parent; Axis.Ancestor; Axis.Preceding_sibling; Axis.Self ])
        ~labels:Generator.labels_abc ()
    in
    return (q, random_tree ~seed:tseed ~n ()))

let prop_rewrite_preserves_semantics =
  qtest ~count:250 "Theorem 5.1: rewrite preserves semantics" arbitrary_case_gen
    (fun (q, t) -> RW.solutions q t = N.solutions q t)

let prop_rewrite_output_acyclic_forward =
  qtest ~count:150 "Theorem 5.1: outputs are acyclic, star- and Following-free"
    arbitrary_case_gen (fun (q, _) ->
      let { RW.queries; _ } = RW.rewrite q in
      List.for_all
        (fun q' ->
          JT.is_acyclic q'
          && List.for_all
               (function
                 | Q.A (a, _, _) ->
                   List.mem a
                     [
                       Axis.Child;
                       Axis.Descendant;
                       Axis.Next_sibling;
                       Axis.Following_sibling;
                     ]
                 | Q.U _ -> true)
               q'.atoms)
        queries)

let test_rewrite_examples () =
  let t = fig2_tree () in
  (* two ancestors of a shared node *)
  let q =
    Q.of_string
      {| q(Z) :- lab(X, "b"), descendant(X, Z), lab(Y, "a"), descendant(Y, Z). |}
  in
  check_nodeset "shared target" (Nodeset.of_list 7 [ 2; 3 ]) (RW.unary q t);
  let r = RW.rewrite q in
  Alcotest.(check bool) "several branches" true (List.length r.queries >= 2);
  (* unsatisfiable: two distinct parents of one node *)
  let q2 =
    Q.of_string
      {| q :- lab(X, "a"), lab(Y, "b"), child(X, Z), child(Y, Z), descendant(X, Y). |}
  in
  Alcotest.(check bool) "two parents unsat" false (RW.boolean q2 t);
  (* Following is eliminated via fresh variables *)
  let q3 = Q.of_string {| q(X) :- following(X, Y), lab(Y, "d"). |} in
  check_nodeset "following" (Nodeset.of_list 7 [ 1; 2; 3; 5 ]) (RW.unary q3 t)

let test_rewrite_cyclic_query () =
  (* a triangle: child(x,y), child(y,z), descendant(x,z) — equivalent to
     just the two child atoms *)
  let t = fig2_tree () in
  let q =
    Q.of_string {| q(Z) :- child(X, Y), child(Y, Z), descendant(X, Z). |}
  in
  Alcotest.(check bool) "cyclic input" false (JT.is_acyclic q);
  check_nodeset "grandchildren" (Nodeset.of_list 7 [ 2; 3; 5; 6 ]) (RW.unary q t)

let test_rewrite_branch_counts () =
  (* rewriting is exponential in general; sanity-check the bookkeeping *)
  let q =
    Q.of_string
      {| q :- descendant(X, W), descendant(Y, W), descendant(Z, W). |}
  in
  let r = RW.rewrite q in
  Alcotest.(check bool) "explored > produced" true
    (r.branches_explored >= List.length r.queries);
  Alcotest.(check bool) "at least one query" true (r.queries <> [])

(* Theorem 4.1: bounded tree-width evaluation *)
let prop_bounded_tw_equals_naive =
  qtest ~count:200 "Theorem 4.1: tree-decomposition evaluation = naive"
    arbitrary_case_gen (fun (q, t) ->
      Cqtree.Bounded_tw.solutions q t = N.solutions q t)

let test_bounded_tw_examples () =
  let t = fig2_tree () in
  (* a width-2 triangle *)
  let q = Q.of_string {| q(Z) :- child(X, Y), child(Y, Z), descendant(X, Z). |} in
  Alcotest.(check int) "width" 2 (Cqtree.Bounded_tw.decomposition_width q);
  check_nodeset "grandchildren" (Nodeset.of_list 7 [ 2; 3; 5; 6 ])
    (Cqtree.Bounded_tw.unary q t);
  (* subsumes the acyclic case at width 1 *)
  let acyclic = Q.of_string {| q(X) :- lab(X, "a"), descendant(X, Y), lab(Y, "b"). |} in
  Alcotest.(check int) "acyclic width" 1
    (Cqtree.Bounded_tw.decomposition_width acyclic);
  check_nodeset "acyclic agreement" (Y.unary acyclic t)
    (Cqtree.Bounded_tw.unary acyclic t);
  (* boolean *)
  Alcotest.(check bool) "boolean true" true (Cqtree.Bounded_tw.boolean q t);
  let unsat = Q.of_string {| q :- child(X, Y), child(Y, X). |} in
  Alcotest.(check bool) "boolean false" false (Cqtree.Bounded_tw.boolean unsat t)

let suite =
  [
    Alcotest.test_case "parser" `Quick test_parse;
    Alcotest.test_case "parser roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "parser errors" `Quick test_parse_errors;
    Alcotest.test_case "forward normalisation" `Quick test_normalize_forward;
    Alcotest.test_case "acyclicity" `Quick test_acyclicity;
    Alcotest.test_case "join tree rooted at head" `Quick test_join_tree_rooting;
    Alcotest.test_case "self loops" `Quick test_self_loop_handling;
    prop_yannakakis_equals_naive;
    prop_yannakakis_boolean_unary;
    prop_domains_are_arc_consistent;
    Alcotest.test_case "Table 1 = paper" `Quick test_table1_matches_paper;
    Alcotest.test_case "Table 1 = exhaustive search" `Quick test_table1_brute_force;
    prop_rewrite_preserves_semantics;
    prop_rewrite_output_acyclic_forward;
    Alcotest.test_case "rewrite worked examples" `Quick test_rewrite_examples;
    Alcotest.test_case "rewrite cyclic query" `Quick test_rewrite_cyclic_query;
    Alcotest.test_case "rewrite branch bookkeeping" `Quick test_rewrite_branch_counts;
    prop_bounded_tw_equals_naive;
    Alcotest.test_case "Theorem 4.1 examples" `Quick test_bounded_tw_examples;
  ]
