(* The attestation harness: the registered bounds sweep clean, the gate
   restores observability state, and an injected superlinear fault is
   caught.  The full-size sweep is the `treequery attest` CI step; here
   the same entry point runs at its default sizes but the assertions are
   structural, so the suite stays fast and machine-independent. *)

let with_clean_obs f =
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let test_registry () =
  let ids = List.map (fun (b : Obs.Bound.t) -> b.Obs.Bound.id) (Obs.Bound.all ()) in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [
      "datalog-grounding"; "hornsat-unit-props"; "semijoin-passes";
      "structural-join-merge"; "stream-buffer-depth"; "plan-cache-lookup";
      "xpath-bottom-up"; "optimizer-pick";
    ];
  (match Obs.Bound.find "plan-cache-lookup" with
  | Some b ->
    Alcotest.(check (float 1e-9)) "O(1) claim has exponent 0" 0.0
      b.Obs.Bound.exponent
  | None -> Alcotest.fail "find failed");
  (* registration is idempotent per id *)
  let n = List.length (Obs.Bound.all ()) in
  let b = List.hd (Obs.Bound.all ()) in
  let b' =
    Obs.Bound.register ~id:b.Obs.Bound.id ~claim:b.Obs.Bound.claim
      ~counter:b.Obs.Bound.counter ~term:b.Obs.Bound.term
      ~exponent:b.Obs.Bound.exponent
  in
  Alcotest.(check bool) "re-register returns the existing bound" true (b == b');
  Alcotest.(check int) "registry size unchanged" n
    (List.length (Obs.Bound.all ()))

let test_clean_sweep () =
  with_clean_obs @@ fun () ->
  let outcomes = Attest.run ~seed:7 ~tolerance:0.15 () in
  Alcotest.(check int) "eight bounds swept" 8 (List.length outcomes);
  List.iter
    (fun (o : Attest.outcome) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: slope %.3f <= %.1f + 0.15" o.Attest.bound.Obs.Bound.id
           o.Attest.slope o.Attest.bound.Obs.Bound.exponent)
        true (Attest.outcome_ok o);
      Alcotest.(check bool)
        (o.Attest.bound.Obs.Bound.id ^ ": sweep produced points")
        true
        (List.length o.Attest.points >= 4))
    outcomes;
  Alcotest.(check bool) "all_ok" true (Attest.all_ok outcomes);
  (* the sweeps enable tracing internally but must restore our state *)
  Alcotest.(check bool) "observability left disabled" false (Obs.enabled ());
  Alcotest.(check (list (pair string int))) "counters left clean" []
    (Obs.Counter.snapshot ())

let test_injected_fault_caught () =
  with_clean_obs @@ fun () ->
  let outcomes = Attest.run ~inject:true ~seed:7 ~tolerance:0.15 () in
  Alcotest.(check int) "ten bounds with the faults injected" 10
    (List.length outcomes);
  Alcotest.(check bool) "gate fails overall" false (Attest.all_ok outcomes);
  let faulty =
    List.find
      (fun (o : Attest.outcome) ->
        o.Attest.bound.Obs.Bound.id = "injected-superlinear")
      outcomes
  in
  Alcotest.(check bool)
    (Printf.sprintf "injected slope %.2f is ~2 against claimed 1"
       faulty.Attest.slope)
    true
    (faulty.Attest.slope > 1.5);
  let bad_pick =
    List.find
      (fun (o : Attest.outcome) ->
        o.Attest.bound.Obs.Bound.id = "injected-bad-pick")
      outcomes
  in
  Alcotest.(check bool)
    (Printf.sprintf "inverted routing slope %.2f overshoots its claim"
       bad_pick.Attest.slope)
    false
    (Attest.outcome_ok bad_pick);
  Alcotest.(check bool) "only the injected bounds fail" true
    (List.for_all
       (fun (o : Attest.outcome) ->
         Attest.outcome_ok o
         || o.Attest.bound.Obs.Bound.id = "injected-superlinear"
         || o.Attest.bound.Obs.Bound.id = "injected-bad-pick")
       outcomes)

let test_json_document () =
  with_clean_obs @@ fun () ->
  let outcomes = Attest.run ~seed:7 ~tolerance:0.15 () in
  let doc = Attest.to_json ~seed:7 ~tolerance:0.15 outcomes in
  (* parses back under our own parser, with the fields CI consumes *)
  let parsed = Obs.Json.of_string (Obs.Json.to_string doc) in
  (match Obs.Json.member "ok" parsed with
  | Some (Obs.Json.Bool true) -> ()
  | _ -> Alcotest.fail "ok field missing or false");
  (match Obs.Json.member "bounds" parsed with
  | Some (Obs.Json.Arr bs) ->
    Alcotest.(check int) "eight bound records" 8 (List.length bs);
    List.iter
      (fun b ->
        match (Obs.Json.member "fitted_slope" b, Obs.Json.member "points" b) with
        | Some (Obs.Json.Num _), Some (Obs.Json.Arr (_ :: _)) -> ()
        | _ -> Alcotest.fail "bound record missing slope or points")
      bs
  | _ -> Alcotest.fail "bounds array missing")

let suite =
  [
    Alcotest.test_case "bound registry" `Quick test_registry;
    Alcotest.test_case "clean sweep attests all bounds" `Slow test_clean_sweep;
    Alcotest.test_case "injected superlinear fault caught" `Slow
      test_injected_fault_caught;
    Alcotest.test_case "BENCH json document" `Slow test_json_document;
  ]
