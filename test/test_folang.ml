open Treekit
open Helpers
module F = Folang.Formula
module FE = Folang.Eval
module OX = Folang.Of_xpath

let test_formula_measures () =
  let phi =
    F.Exists ("y", F.And (F.Axis (Axis.Child, "x", "y"), F.Lab ("a", "y")))
  in
  Alcotest.(check (list string)) "free vars" [ "x" ] (F.free_vars phi);
  Alcotest.(check int) "two names" 2 (F.variable_count phi);
  Alcotest.(check bool) "not a sentence" false (F.is_sentence phi);
  Alcotest.(check bool) "sentence" true (F.is_sentence (F.Exists ("x", F.Lab ("a", "x"))));
  (* variable reuse counts once — the FOk point *)
  let reuse =
    F.Exists
      ( "y",
        F.And
          ( F.Axis (Axis.Child, "x", "y"),
            F.Exists ("x", F.Axis (Axis.Child, "y", "x")) ) )
  in
  Alcotest.(check int) "reused names" 2 (F.variable_count reuse)

let test_eval_basics () =
  let t = fig2_tree () in
  (* nodes labeled a with a b-child *)
  let phi =
    F.And
      ( F.Lab ("a", "v"),
        F.Exists ("w", F.And (F.Axis (Axis.Child, "v", "w"), F.Lab ("b", "w"))) )
  in
  check_nodeset "a with b child" (Nodeset.of_list 7 [ 0; 4 ]) (FE.unary t phi);
  (* ∀: every child is a leaf *)
  let all_children_leaves =
    F.Forall
      ( "w",
        F.Or
          ( F.Not (F.Axis (Axis.Child, "v", "w")),
            F.Not (F.Exists ("v", F.Axis (Axis.Child, "w", "v"))) ) )
  in
  check_nodeset "all children leaves" (Nodeset.of_list 7 [ 1; 2; 3; 4; 5; 6 ])
    (FE.unary t all_children_leaves);
  (* sentences *)
  Alcotest.(check bool) "exists d" true
    (FE.holds t (F.Exists ("x", F.Lab ("d", "x"))));
  Alcotest.(check bool) "no z" false (FE.holds t (F.Exists ("x", F.Lab ("z", "x"))));
  Alcotest.(check bool) "all labeled" true
    (FE.holds t (F.Forall ("x", F.disj [ F.Lab ("a", "x"); F.Lab ("b", "x"); F.Lab ("c", "x"); F.Lab ("d", "x") ])));
  Alcotest.(check bool) "equality" true
    (FE.holds t (F.Exists ("x", F.Exists ("y", F.And (F.Eq ("x", "y"), F.Lab ("c", "x"))))))

let test_eval_rejects () =
  let t = fig2_tree () in
  Alcotest.(check bool) "holds rejects free vars" true
    (match FE.holds t (F.Lab ("a", "x")) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "unary rejects binary" true
    (match FE.unary t (F.Axis (Axis.Child, "x", "y")) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let fo2_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let* tseed = int_range 0 100_000 in
    let* depth = int_range 0 3 in
    let* n = int_range 1 15 in
    return
      ( Xpath.Generator.random ~seed ~depth ~labels:Generator.labels_abc (),
        random_tree ~seed:tseed ~n () ))

let prop_fo2_translation =
  qtest ~count:200 "Core XPath → FO2 preserves semantics (Marx [57])" fo2_gen
    (fun (p, t) ->
      let phi = OX.unary p in
      F.variable_count phi <= 2
      && Nodeset.equal (FE.unary t phi) (Xpath.Eval.query t p)
      && FE.holds t (OX.boolean p)
         = not (Nodeset.is_empty (Xpath.Eval.query t p)))

let prop_fo2_linear_size =
  qtest ~count:100 "FO2 translation is linear in |Q|"
    QCheck2.Gen.(int_range 1 20)
    (fun k ->
      let p = Xpath.Generator.star_chain ~length:k in
      F.size (OX.unary p) <= 10 * Xpath.Ast.size p + 10)

let prop_demorgan =
  qtest ~count:100 "FO equivalences (de Morgan, ∀ = ¬∃¬)" fo2_gen (fun (_, t) ->
      let phi = F.Lab ("a", "v")
      and psi =
        F.Exists ("w", F.And (F.Axis (Axis.Descendant, "v", "w"), F.Lab ("b", "w")))
      in
      let n1 = FE.unary t (F.Not (F.And (phi, psi)))
      and n2 = FE.unary t (F.Or (F.Not phi, F.Not psi)) in
      let f1 = FE.unary t (F.Forall ("w", F.Or (F.Not (F.Axis (Axis.Child, "v", "w")), F.Lab ("a", "w"))))
      and f2 =
        FE.unary t
          (F.Not (F.Exists ("w", F.Not (F.Or (F.Not (F.Axis (Axis.Child, "v", "w")), F.Lab ("a", "w"))))))
      in
      Nodeset.equal n1 n2 && Nodeset.equal f1 f2)

let suite =
  [
    Alcotest.test_case "formula measures" `Quick test_formula_measures;
    Alcotest.test_case "evaluation basics" `Quick test_eval_basics;
    Alcotest.test_case "evaluation input checks" `Quick test_eval_rejects;
    prop_fo2_translation;
    prop_fo2_linear_size;
    prop_demorgan;
  ]
