open Treekit
open Helpers
module E = Treequery.Engine

let test_planning () =
  let strat s = E.strategy_name (E.plan (E.parse_cq s)) in
  Alcotest.(check string) "acyclic -> yannakakis" "yannakakis"
    (strat {| q(X) :- lab(X, "a"), child(X, Y). |});
  Alcotest.(check string) "cyclic tau1 -> arc consistency" "arc-consistency"
    (strat {| q(X) :- descendant(X, Y), descendant(Y, Z), descendant(X, Z). |});
  Alcotest.(check string) "cyclic mixed -> rewrite" "rewrite-to-acyclic"
    (strat {| q(X) :- child(X, Y), descendant(Y, Z), descendant(X, Z). |});
  Alcotest.(check string) "xpath" "xpath-bottom-up"
    (E.strategy_name (E.plan (E.parse_xpath "//a")));
  Alcotest.(check string) "datalog" "datalog-hornsat"
    (E.strategy_name (E.plan (E.parse_datalog {| p(X) :- root(X). ?- p. |})))

let test_explain_mentions_strategy () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let e = E.explain (E.parse_cq {| q(X) :- lab(X, "a"), child(X, Y). |}) in
  Alcotest.(check bool) "mentions yannakakis" true (contains e "yannakakis");
  Alcotest.(check bool) "mentions acyclic" true (contains e "acyclic");
  let e2 = E.explain (E.parse_xpath "//a[not(b)]") in
  Alcotest.(check bool) "mentions xpath" true (contains e2 "Core XPath");
  let e3 = E.explain (E.parse_datalog {| p(X) :- root(X). ?- p. |}) in
  Alcotest.(check bool) "mentions datalog" true (contains e3 "datalog")

let test_eval_languages_agree () =
  let t = fig2_tree () in
  (* "descendants labeled b" in all three languages *)
  let via_xpath = E.eval (E.parse_xpath "//b") t in
  let via_cq = E.eval (E.parse_cq {| q(X) :- lab(X, "b"), ancestor(X, Y), root(Y). |}) t in
  let via_datalog =
    E.eval
      (E.parse_datalog
         {| mark(X) :- lab(X, "b"), notroot(X).
            notroot(X) :- firstchild(Y, X).
            notroot(X) :- nextsibling(Y, X).
            ?- mark. |})
      t
  in
  check_nodeset "xpath" (Nodeset.of_list 7 [ 1; 5 ]) via_xpath;
  check_nodeset "cq" (Nodeset.of_list 7 [ 1; 5 ]) via_cq;
  check_nodeset "datalog" (Nodeset.of_list 7 [ 1; 5 ]) via_datalog

let test_boolean_and_solutions () =
  let t = fig2_tree () in
  let q = E.parse_cq {| q :- lab(X, "d"). |} in
  Alcotest.(check bool) "boolean true" true (E.eval_boolean q t);
  check_nodeset "boolean eval = {root}" (Nodeset.of_list 7 [ 0 ]) (E.eval q t);
  let q2 = E.parse_cq {| q :- lab(X, "zzz"). |} in
  Alcotest.(check bool) "boolean false" false (E.eval_boolean q2 t);
  let q3 = E.parse_cq {| q(X, Y) :- lab(X, "b"), child(X, Y). |} in
  check_tuples "pairs" [ [| 1; 2 |]; [| 1; 3 |] ] (E.solutions q3 t)

let test_positive_and_axis_datalog () =
  let t = fig2_tree () in
  let u = E.parse_positive [ {| q(X) :- lab(X, "c"). |}; {| q(X) :- lab(X, "d"). |} ] in
  Alcotest.(check string) "positive strategy" "positive-union-rewrite"
    (E.strategy_name (E.plan u));
  check_nodeset "positive eval" (Nodeset.of_list 7 [ 3; 6 ]) (E.eval u t);
  Alcotest.(check bool) "positive boolean" true (E.eval_boolean u t);
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "positive explain" true
    (contains (E.explain u) "Corollary 5.2");
  let d =
    E.parse_axis_datalog
      {| even(X) :- root(X).
         odd(Y) :- even(X), child(X, Y).
         even(Y) :- odd(X), child(X, Y).
         ?- odd. |}
  in
  Alcotest.(check string) "axis-datalog strategy" "datalog-yannakakis-fixpoint"
    (E.strategy_name (E.plan d));
  check_nodeset "odd depths" (Nodeset.of_list 7 [ 1; 4 ]) (E.eval d t);
  Alcotest.(check bool) "axis-datalog explain" true
    (contains (E.explain d) "mon.datalog[X]")

let test_yannakakis_semijoin_count () =
  (* a Yannakakis run performs at most 2·(#atoms) semijoin passes
     (full reducer, Prop. 4.2) *)
  let q = E.parse_cq {| q(X) :- lab(X, "a"), child(X, Y), lab(Y, "b"). |} in
  Alcotest.(check string) "yannakakis plan" "yannakakis"
    (E.strategy_name (E.plan q));
  let atoms = match q with E.Cq_query cq -> Cqtree.Query.atom_count cq | _ -> assert false in
  Obs.reset ();
  ignore (Obs.with_enabled true (fun () -> E.solutions q (fig2_tree ())));
  let passes =
    Option.value ~default:0
      (List.assoc_opt "semijoin_passes" (Obs.Counter.snapshot ()))
  in
  Obs.reset ();
  Alcotest.(check bool)
    (Printf.sprintf "0 < %d passes <= 2*%d" passes atoms)
    true
    (passes > 0 && passes <= 2 * atoms)

let strategies_gen =
  QCheck2.Gen.(
    let* qseed = int_range 0 100_000 in
    let* tseed = int_range 0 100_000 in
    let* nvars = int_range 1 4 in
    let* natoms = int_range 1 4 in
    let* n = int_range 1 16 in
    let q =
      Cqtree.Generator.arbitrary ~seed:qseed ~nvars ~natoms
        ~axes:
          [
            Axis.Child; Axis.Descendant; Axis.Next_sibling; Axis.Following_sibling;
            Axis.Following; Axis.Parent; Axis.Ancestor;
          ]
        ~labels:Generator.labels_abc ()
    in
    return (q, random_tree ~seed:tseed ~n ()))

let prop_engine_equals_naive =
  qtest ~count:250 "engine (any strategy) = naive" strategies_gen (fun (q, t) ->
      E.solutions (E.Cq_query q) t = Cqtree.Naive.solutions q t)

let prop_engine_boolean =
  qtest ~count:200 "engine boolean = naive boolean" strategies_gen (fun (q, t) ->
      let qb = { q with Cqtree.Query.head = [] } in
      E.eval_boolean (E.Cq_query qb) t = Cqtree.Naive.boolean qb t)

let suite =
  [
    Alcotest.test_case "strategy planning" `Quick test_planning;
    Alcotest.test_case "explain output" `Quick test_explain_mentions_strategy;
    Alcotest.test_case "three languages agree" `Quick test_eval_languages_agree;
    Alcotest.test_case "boolean and k-ary" `Quick test_boolean_and_solutions;
    Alcotest.test_case "positive FO and axis datalog" `Quick
      test_positive_and_axis_datalog;
    Alcotest.test_case "yannakakis semijoin-pass count" `Quick
      test_yannakakis_semijoin_count;
    prop_engine_equals_naive;
    prop_engine_boolean;
  ]
