(* Binary-level CLI regressions.

   These run the real executable (dune wires ../bin/main.exe as a test
   dep), because the bugs they pin live in argument handling — cmdliner
   wiring and the handle_errors exit path — which no library test
   reaches.

   The --domains validation: 0 and negative values must fail with a
   clean one-line error and the CLI failure status (124), never a
   Division_by_zero or a hung pool spawn. *)

let exe = Filename.concat (Filename.dirname Sys.argv.(0)) "../bin/main.exe"

(* run a command line, return (exit_code, combined output) *)
let run_cli args =
  let cmd = Filename.quote_command exe args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s -> 128 + s
    | Unix.WSTOPPED s -> 128 + s
  in
  (code, Buffer.contents buf)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let serve_args rest = [ "serve"; "--random"; "50"; "--requests"; "5" ] @ rest

let check_rejects name args ~expect_msg =
  let code, out = run_cli (serve_args args) in
  Alcotest.(check int) (name ^ ": exit code") 124 code;
  Alcotest.(check bool)
    (Printf.sprintf "%s: message mentions the constraint (got %S)" name out)
    true
    (contains out expect_msg)

let test_domains_zero_rejected () =
  check_rejects "--domains 0" [ "--domains"; "0" ]
    ~expect_msg:"--domains must be >= 1"

let test_domains_negative_rejected () =
  check_rejects "--domains=-2" [ "--domains=-2" ]
    ~expect_msg:"--domains must be >= 1"

let test_domains_dangling_negative_rejected () =
  (* `--domains -2` parses -2 as an unknown option: cmdliner usage error,
     same failure status, no partial serve run *)
  let code, out = run_cli (serve_args [ "--domains"; "-2" ]) in
  Alcotest.(check int) "bare -2: exit code" 124 code;
  Alcotest.(check bool) "bare -2: no serve output" true
    (not (contains out "served"))

let test_domains_one_accepted () =
  let code, _ = run_cli (serve_args [ "--domains"; "1" ]) in
  Alcotest.(check int) "--domains 1 serves" 0 code

let test_strategy_unknown_rejected () =
  let code, out = run_cli (serve_args [ "--strategy"; "bogus" ]) in
  Alcotest.(check int) "unknown strategy: exit code" 124 code;
  Alcotest.(check bool)
    (Printf.sprintf "unknown strategy named in error (got %S)" out)
    true (contains out "bogus")

let test_optimizer_out_requires_auto () =
  let code, out = run_cli (serve_args [ "--optimizer-out"; "/dev/null" ]) in
  Alcotest.(check int) "--optimizer-out without auto: exit code" 124 code;
  Alcotest.(check bool)
    (Printf.sprintf "error names the missing flag (got %S)" out)
    true
    (contains out "--strategy auto")

let test_strategy_auto_serves () =
  let code, out = run_cli (serve_args [ "--strategy"; "auto" ]) in
  Alcotest.(check int) "--strategy auto serves" 0 code;
  Alcotest.(check bool)
    (Printf.sprintf "summary reports the optimizer (got %S)" out)
    true
    (contains out "optimizer:")

let suite =
  [
    Alcotest.test_case "serve --domains 0 fails cleanly" `Quick
      test_domains_zero_rejected;
    Alcotest.test_case "serve --domains=-2 fails cleanly" `Quick
      test_domains_negative_rejected;
    Alcotest.test_case "serve --domains -2 is a usage error" `Quick
      test_domains_dangling_negative_rejected;
    Alcotest.test_case "serve --domains 1 still works" `Quick
      test_domains_one_accepted;
    Alcotest.test_case "serve --strategy rejects unknown names" `Quick
      test_strategy_unknown_rejected;
    Alcotest.test_case "--optimizer-out requires --strategy auto" `Quick
      test_optimizer_out_requires_auto;
    Alcotest.test_case "serve --strategy auto end-to-end" `Quick
      test_strategy_auto_serves;
  ]
